//! Capture-avoiding substitution of annotated values for variables.
//!
//! The substitution `P{w̃/x̃}` replaces free occurrences of the variables
//! `x̃` by the annotated values `w̃`.  Two forms of capture must be avoided:
//!
//! * *variable capture* — we never substitute inside the continuation of an
//!   input branch that re-binds a variable in the substitution's domain
//!   (shadowing);
//! * *channel capture* — a substituted value may mention a channel name `n`
//!   that is bound by a restriction `(νn)` inside the target process; in
//!   that case the restriction is alpha-converted to a fresh name drawn
//!   from a [`NameSupply`].

use crate::name::{Channel, NameSupply, Variable};
use crate::process::{InputBranch, Process};
use crate::value::{AnnotatedValue, Identifier, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A finite map from variables to annotated values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: BTreeMap<Variable, AnnotatedValue>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// The singleton substitution `{value/variable}`.
    pub fn single(variable: impl Into<Variable>, value: AnnotatedValue) -> Self {
        let mut s = Substitution::new();
        s.bind(variable, value);
        s
    }

    /// Builds a substitution from parallel lists of binders and values.
    ///
    /// # Panics
    ///
    /// Panics if the two lists have different lengths; the reduction engine
    /// checks arity before constructing substitutions.
    pub fn parallel(variables: &[Variable], values: &[AnnotatedValue]) -> Self {
        assert_eq!(
            variables.len(),
            values.len(),
            "substitution arity mismatch: {} binders vs {} values",
            variables.len(),
            values.len()
        );
        let mut s = Substitution::new();
        for (x, v) in variables.iter().zip(values.iter()) {
            s.bind(x.clone(), v.clone());
        }
        s
    }

    /// Adds a binding, replacing any previous binding for the variable.
    pub fn bind(&mut self, variable: impl Into<Variable>, value: AnnotatedValue) -> &mut Self {
        self.map.insert(variable.into(), value);
        self
    }

    /// Looks up a variable.
    pub fn get(&self, variable: &Variable) -> Option<&AnnotatedValue> {
        self.map.get(variable)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The domain of the substitution.
    pub fn domain(&self) -> impl Iterator<Item = &Variable> {
        self.map.keys()
    }

    /// Returns a copy of the substitution with the given variables removed
    /// from its domain (used when passing under a binder that shadows them).
    fn without<'a>(&self, shadowed: impl Iterator<Item = &'a Variable>) -> Substitution {
        let mut map = self.map.clone();
        for x in shadowed {
            map.remove(x);
        }
        Substitution { map }
    }

    /// Channel names occurring in the range of the substitution (these are
    /// the names that a restriction must not capture).
    fn range_channels(&self) -> Vec<Channel> {
        let mut out = Vec::new();
        for v in self.map.values() {
            if let Value::Channel(c) = &v.value {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
        }
        out
    }

    /// Applies the substitution to an identifier.
    pub fn apply_identifier(&self, w: &Identifier) -> Identifier {
        match w {
            Identifier::Variable(x) => match self.map.get(x) {
                Some(v) => Identifier::Value(v.clone()),
                None => w.clone(),
            },
            Identifier::Value(_) => w.clone(),
        }
    }

    /// Applies the substitution to a process, alpha-converting restrictions
    /// as needed to avoid channel capture.
    pub fn apply_process<P: Clone>(
        &self,
        process: &Process<P>,
        supply: &mut NameSupply,
    ) -> Process<P> {
        if self.is_empty() {
            return process.clone();
        }
        match process {
            Process::Output { channel, payload } => Process::Output {
                channel: self.apply_identifier(channel),
                payload: payload.iter().map(|w| self.apply_identifier(w)).collect(),
            },
            Process::InputSum { channel, branches } => Process::InputSum {
                channel: self.apply_identifier(channel),
                branches: branches
                    .iter()
                    .map(|b| {
                        let inner = self.without(b.binders());
                        InputBranch {
                            bindings: b.bindings.clone(),
                            continuation: inner.apply_process(&b.continuation, supply),
                        }
                    })
                    .collect(),
            },
            Process::Match {
                lhs,
                rhs,
                then_branch,
                else_branch,
            } => Process::Match {
                lhs: self.apply_identifier(lhs),
                rhs: self.apply_identifier(rhs),
                then_branch: Box::new(self.apply_process(then_branch, supply)),
                else_branch: Box::new(self.apply_process(else_branch, supply)),
            },
            Process::Restriction { name, body } => {
                if self.range_channels().contains(name) {
                    // The restricted name would capture a substituted value:
                    // alpha-convert the restriction before going under it.
                    let fresh = supply.fresh_channel(name);
                    let renamed = rename_channel_process(body, name, &fresh);
                    Process::Restriction {
                        name: fresh,
                        body: Box::new(self.apply_process(&renamed, supply)),
                    }
                } else {
                    Process::Restriction {
                        name: name.clone(),
                        body: Box::new(self.apply_process(body, supply)),
                    }
                }
            }
            Process::Parallel(ps) => {
                Process::Parallel(ps.iter().map(|q| self.apply_process(q, supply)).collect())
            }
            Process::Replicate(body) => {
                Process::Replicate(Box::new(self.apply_process(body, supply)))
            }
            Process::Nil => Process::Nil,
        }
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (x, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", v, x)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Variable, AnnotatedValue)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (Variable, AnnotatedValue)>>(iter: T) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

/// Renames *free* occurrences of channel `from` to `to` in a process.
///
/// Occurrences under a restriction that re-binds `from` are left untouched.
/// Provenance annotations are unaffected because provenance never mentions
/// channel names.
pub fn rename_channel_process<P: Clone>(
    process: &Process<P>,
    from: &Channel,
    to: &Channel,
) -> Process<P> {
    let rename_ident = |w: &Identifier| -> Identifier {
        match w {
            Identifier::Value(av) => Identifier::Value(rename_channel_value(av, from, to)),
            Identifier::Variable(_) => w.clone(),
        }
    };
    match process {
        Process::Output { channel, payload } => Process::Output {
            channel: rename_ident(channel),
            payload: payload.iter().map(rename_ident).collect(),
        },
        Process::InputSum { channel, branches } => Process::InputSum {
            channel: rename_ident(channel),
            branches: branches
                .iter()
                .map(|b| InputBranch {
                    bindings: b.bindings.clone(),
                    continuation: rename_channel_process(&b.continuation, from, to),
                })
                .collect(),
        },
        Process::Match {
            lhs,
            rhs,
            then_branch,
            else_branch,
        } => Process::Match {
            lhs: rename_ident(lhs),
            rhs: rename_ident(rhs),
            then_branch: Box::new(rename_channel_process(then_branch, from, to)),
            else_branch: Box::new(rename_channel_process(else_branch, from, to)),
        },
        Process::Restriction { name, body } => {
            if name == from {
                // `from` is re-bound here; do not rename inside.
                Process::Restriction {
                    name: name.clone(),
                    body: body.clone(),
                }
            } else {
                Process::Restriction {
                    name: name.clone(),
                    body: Box::new(rename_channel_process(body, from, to)),
                }
            }
        }
        Process::Parallel(ps) => Process::Parallel(
            ps.iter()
                .map(|q| rename_channel_process(q, from, to))
                .collect(),
        ),
        Process::Replicate(body) => {
            Process::Replicate(Box::new(rename_channel_process(body, from, to)))
        }
        Process::Nil => Process::Nil,
    }
}

/// Renames the plain value of an annotated value if it is the channel
/// `from`; the provenance is left untouched.
pub fn rename_channel_value(av: &AnnotatedValue, from: &Channel, to: &Channel) -> AnnotatedValue {
    match &av.value {
        Value::Channel(c) if c == from => AnnotatedValue {
            value: Value::Channel(to.clone()),
            provenance: av.provenance.clone(),
        },
        _ => av.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AnyPattern;
    use crate::provenance::{Event, Provenance};

    type P = Process<AnyPattern>;

    fn supply() -> NameSupply {
        NameSupply::new()
    }

    #[test]
    fn substitutes_free_variable_in_output() {
        let p: P = Process::output(Identifier::variable("x"), Identifier::variable("y"));
        let s = Substitution::parallel(
            &[Variable::new("x"), Variable::new("y")],
            &[AnnotatedValue::channel("m"), AnnotatedValue::channel("v")],
        );
        let q = s.apply_process(&p, &mut supply());
        assert_eq!(
            q,
            Process::output(Identifier::channel("m"), Identifier::channel("v"))
        );
    }

    #[test]
    fn substitution_keeps_provenance_of_value() {
        let annotated = AnnotatedValue::channel("v")
            .sent_by(&crate::name::Principal::new("a"), &Provenance::empty());
        let p: P = Process::output(Identifier::channel("m"), Identifier::variable("x"));
        let s = Substitution::single("x", annotated.clone());
        let q = s.apply_process(&p, &mut supply());
        match q {
            Process::Output { payload, .. } => {
                assert_eq!(payload[0], Identifier::Value(annotated));
            }
            _ => panic!("expected output"),
        }
    }

    #[test]
    fn shadowed_binder_blocks_substitution() {
        // m(Any as x). x<v>   with substitution {w/x}: the inner x is bound, untouched.
        let p: P = Process::input(
            Identifier::channel("m"),
            AnyPattern,
            "x",
            Process::output(Identifier::variable("x"), Identifier::channel("v")),
        );
        let s = Substitution::single("x", AnnotatedValue::channel("w"));
        let q = s.apply_process(&p, &mut supply());
        assert_eq!(q, p, "bound occurrences must not be substituted");
    }

    #[test]
    fn unshadowed_sibling_branch_is_substituted() {
        let b1 = InputBranch::monadic(AnyPattern, "x", Process::nil());
        let b2 = InputBranch::monadic(
            AnyPattern,
            "y",
            Process::output(Identifier::variable("x"), Identifier::channel("v")),
        );
        let p: P = Process::input_sum(Identifier::channel("m"), vec![b1, b2]);
        let s = Substitution::single("x", AnnotatedValue::channel("w"));
        let q = s.apply_process(&p, &mut supply());
        match q {
            Process::InputSum { branches, .. } => match &branches[1].continuation {
                Process::Output { channel, .. } => {
                    assert_eq!(channel, &Identifier::channel("w"));
                }
                other => panic!("unexpected continuation {:?}", other),
            },
            other => panic!("unexpected process {:?}", other),
        }
    }

    #[test]
    fn restriction_is_alpha_converted_to_avoid_capture() {
        // (νn) x<u>  with {n/x}: naive substitution would capture n.
        let p: P = Process::restrict(
            "n",
            Process::output(Identifier::variable("x"), Identifier::channel("u")),
        );
        let s = Substitution::single("x", AnnotatedValue::channel("n"));
        let q = s.apply_process(&p, &mut supply());
        match q {
            Process::Restriction { name, body } => {
                assert_ne!(name, Channel::new("n"), "binder must be renamed");
                assert!(name.is_generated());
                match *body {
                    Process::Output { ref channel, .. } => {
                        // The substituted free n must refer to the *outer* n.
                        assert_eq!(channel, &Identifier::channel("n"));
                    }
                    ref other => panic!("unexpected body {:?}", other),
                }
            }
            other => panic!("expected restriction, got {:?}", other),
        }
    }

    #[test]
    fn restriction_untouched_when_no_capture() {
        let p: P = Process::restrict(
            "n",
            Process::output(Identifier::variable("x"), Identifier::channel("u")),
        );
        let s = Substitution::single("x", AnnotatedValue::channel("m"));
        let q = s.apply_process(&p, &mut supply());
        match q {
            Process::Restriction { name, .. } => assert_eq!(name, Channel::new("n")),
            other => panic!("expected restriction, got {:?}", other),
        }
    }

    #[test]
    fn rename_respects_rebinding() {
        let p: P = Process::par(
            Process::output(Identifier::channel("n"), Identifier::channel("v")),
            Process::restrict(
                "n",
                Process::output(Identifier::channel("n"), Identifier::channel("v")),
            ),
        );
        let q = rename_channel_process(&p, &Channel::new("n"), &Channel::new("fresh"));
        match q {
            Process::Parallel(ps) => {
                assert_eq!(
                    ps[0],
                    Process::output(Identifier::channel("fresh"), Identifier::channel("v"))
                );
                // The restricted copy keeps its bound n.
                match &ps[1] {
                    Process::Restriction { name, body } => {
                        assert_eq!(name, &Channel::new("n"));
                        assert_eq!(
                            **body,
                            Process::output(Identifier::channel("n"), Identifier::channel("v"))
                        );
                    }
                    other => panic!("unexpected {:?}", other),
                }
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn rename_value_only_changes_matching_channel() {
        let ev = Event::output(crate::name::Principal::new("a"), Provenance::empty());
        let av = AnnotatedValue::new(Channel::new("n"), Provenance::single(ev.clone()));
        let renamed = rename_channel_value(&av, &Channel::new("n"), &Channel::new("m"));
        assert_eq!(renamed.value, Value::Channel(Channel::new("m")));
        assert_eq!(renamed.provenance, Provenance::single(ev));
        let untouched = rename_channel_value(&av, &Channel::new("z"), &Channel::new("m"));
        assert_eq!(untouched, av);
    }

    #[test]
    fn empty_substitution_is_identity() {
        let p: P = Process::restrict(
            "n",
            Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
        );
        let s = Substitution::new();
        assert_eq!(s.apply_process(&p, &mut supply()), p);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_shows_bindings() {
        let s = Substitution::single("x", AnnotatedValue::channel("v"));
        assert_eq!(s.to_string(), "{v:ε/x}");
    }

    #[test]
    #[should_panic(expected = "substitution arity mismatch")]
    fn parallel_panics_on_arity_mismatch() {
        let _ = Substitution::parallel(&[Variable::new("x")], &[]);
    }
}
