//! The provenance-tracking reduction relation (Table 2 of the paper).
//!
//! Reduction is defined on [`Configuration`]s (systems in structural normal
//! form).  Each rule application is described by a [`Redex`]; applying a
//! redex yields the successor configuration together with a [`StepEvent`]
//! describing what happened — the latter is exactly the information the
//! monitored semantics of §3.3 records in the global log.
//!
//! The implemented rules are:
//!
//! * **R-Send** — `a[m:κₘ⟨v:κᵥ⟩] → m⟨⟨v : a!κₘ; κᵥ⟩⟩`
//! * **R-Recv** — `a[Σᵢ m:κₘ(πᵢ as xᵢ).Pᵢ] ‖ m⟨⟨v:κᵥ⟩⟩ → a[Pⱼ{v : a?κₘ;κᵥ/xⱼ}]`
//!   provided `κᵥ ⊨ πⱼ`
//! * **R-IfT / R-IfF** — matching on plain values, provenance ignored
//! * **R-Res, R-Par, R-Struct** — absorbed by the configuration normal form
//! * replication unfolds lazily: a redex "inside" `*P` spawns one fresh copy
//!   of `P` and keeps `*P`.

use crate::configuration::Configuration;
use crate::name::{Channel, Principal};
use crate::pattern::PatternLanguage;
use crate::process::Process;
use crate::subst::Substitution;
use crate::system::{Message, System};
use crate::value::{AnnotatedValue, Identifier, Value};
use std::error::Error;
use std::fmt;

/// What a reduction step did, in the vocabulary of the paper's monitored
/// semantics (§3.3): `a.snd(m, ṽ)`, `a.rcv(m, ṽ)`, `a.ift(u, v)`,
/// `a.iff(u, v)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepEvent {
    /// The principal that performed the step.
    pub principal: Principal,
    /// The action performed.
    pub kind: StepKind,
}

/// The action component of a [`StepEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// The principal sent `payload` on `channel`.
    Send {
        /// Destination channel.
        channel: Channel,
        /// Plain values sent (their updated provenance is in the resulting
        /// message, not here; the log records plain values only).
        payload: Vec<Value>,
    },
    /// The principal received `payload` from `channel`, selecting `branch`.
    Receive {
        /// Source channel.
        channel: Channel,
        /// Plain values received.
        payload: Vec<Value>,
        /// Index of the input branch selected.
        branch: usize,
    },
    /// An `if` test that succeeded.
    IfTrue {
        /// Left plain value.
        lhs: Value,
        /// Right plain value.
        rhs: Value,
    },
    /// An `if` test that failed.
    IfFalse {
        /// Left plain value.
        lhs: Value,
        /// Right plain value.
        rhs: Value,
    },
}

impl StepEvent {
    /// `true` if this step is a communication (send or receive) rather than
    /// an internal match.
    pub fn is_communication(&self) -> bool {
        matches!(self.kind, StepKind::Send { .. } | StepKind::Receive { .. })
    }
}

impl fmt::Display for StepEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_values = |vs: &[Value]| -> String {
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        match &self.kind {
            StepKind::Send { channel, payload } => {
                write!(
                    f,
                    "{}.snd({}, {})",
                    self.principal,
                    channel,
                    fmt_values(payload)
                )
            }
            StepKind::Receive {
                channel, payload, ..
            } => write!(
                f,
                "{}.rcv({}, {})",
                self.principal,
                channel,
                fmt_values(payload)
            ),
            StepKind::IfTrue { lhs, rhs } => {
                write!(f, "{}.ift({}, {})", self.principal, lhs, rhs)
            }
            StepKind::IfFalse { lhs, rhs } => {
                write!(f, "{}.iff({}, {})", self.principal, lhs, rhs)
            }
        }
    }
}

/// Where in the configuration a redex lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedexTarget {
    /// The redex is the thread at this index.
    Direct {
        /// Index into [`Configuration::threads`].
        thread: usize,
    },
    /// The redex is inside the body of the replication thread at
    /// `thread`; `sub` indexes the guarded component of one unfolded copy.
    Replicated {
        /// Index of the `*P` thread.
        thread: usize,
        /// Index (relative to the unfolding) of the guarded component.
        sub: usize,
    },
}

/// The kind of rule a redex will apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedexAction {
    /// R-Send.
    Send,
    /// R-Recv consuming the message at `message`, selecting `branch`.
    Receive {
        /// Index into [`Configuration::messages`].
        message: usize,
        /// Index of the input branch to take.
        branch: usize,
    },
    /// R-IfT or R-IfF (decided when applied).
    Match,
}

/// A single applicable reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redex {
    /// Which thread acts.
    pub target: RedexTarget,
    /// Which rule applies.
    pub action: RedexAction,
}

/// Errors raised when a reduction cannot be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// The system contains free variables; reduction is defined on closed
    /// systems only.
    NotClosed(String),
    /// An identifier in channel position is a principal name, which cannot
    /// be used as a communication channel.
    NotAChannel(String),
    /// The redex refers to a thread or message that no longer exists.
    StaleRedex,
    /// The message's arity does not match the selected input branch.
    ArityMismatch {
        /// Values carried by the message.
        expected: usize,
        /// Binders in the selected branch.
        found: usize,
    },
    /// The provenance of the message does not satisfy the branch's pattern.
    PatternMismatch,
    /// The thread is not of the right shape for the requested rule.
    RuleMismatch,
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::NotClosed(what) => {
                write!(f, "system is not closed: free variable {}", what)
            }
            ReductionError::NotAChannel(what) => {
                write!(f, "identifier {} is not a channel name", what)
            }
            ReductionError::StaleRedex => write!(f, "redex refers to a stale thread or message"),
            ReductionError::ArityMismatch { expected, found } => write!(
                f,
                "arity mismatch: message carries {} values but branch binds {}",
                expected, found
            ),
            ReductionError::PatternMismatch => {
                write!(f, "message provenance does not satisfy the branch pattern")
            }
            ReductionError::RuleMismatch => {
                write!(
                    f,
                    "thread shape does not match the requested reduction rule"
                )
            }
        }
    }
}

impl Error for ReductionError {}

/// Extracts the channel name and channel provenance from an identifier in
/// subject (channel) position.
fn subject_channel(
    ident: &Identifier,
) -> Result<(&Channel, &crate::provenance::Provenance), ReductionError> {
    match ident {
        Identifier::Value(av) => match &av.value {
            Value::Channel(c) => Ok((c, &av.provenance)),
            Value::Principal(p) => Err(ReductionError::NotAChannel(p.to_string())),
        },
        Identifier::Variable(x) => Err(ReductionError::NotClosed(x.to_string())),
    }
}

/// Extracts an annotated value from an identifier in object position.
fn object_value(ident: &Identifier) -> Result<&AnnotatedValue, ReductionError> {
    match ident {
        Identifier::Value(av) => Ok(av),
        Identifier::Variable(x) => Err(ReductionError::NotClosed(x.to_string())),
    }
}

/// Enumerates every redex currently enabled in the configuration.
///
/// The enumeration is deterministic: redexes are listed in thread order,
/// and for receives in message order then branch order.  Schedulers build
/// on this to implement their policies.
pub fn enumerate_redexes<P, L>(cfg: &Configuration<P>, matcher: &L) -> Vec<Redex>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    // Replication bodies are explored up to a bounded nesting depth: a redex
    // under k nested replications needs k virtual unfoldings to be seen.
    // Depth 4 covers any realistic system while keeping enumeration total.
    enumerate_redexes_bounded(cfg, matcher, 4)
}

fn enumerate_redexes_bounded<P, L>(
    cfg: &Configuration<P>,
    matcher: &L,
    replication_depth: usize,
) -> Vec<Redex>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    let mut out = Vec::new();
    for (i, thread) in cfg.threads.iter().enumerate() {
        match &thread.process {
            Process::Output { .. } => out.push(Redex {
                target: RedexTarget::Direct { thread: i },
                action: RedexAction::Send,
            }),
            Process::Match { .. } => out.push(Redex {
                target: RedexTarget::Direct { thread: i },
                action: RedexAction::Match,
            }),
            Process::InputSum { channel, branches } => {
                if let Ok((name, _)) = subject_channel(channel) {
                    for (mi, message) in cfg.messages.iter().enumerate() {
                        if &message.channel != name {
                            continue;
                        }
                        for (bi, branch) in branches.iter().enumerate() {
                            if branch.arity() != message.arity() {
                                continue;
                            }
                            let all_match =
                                branch.bindings.iter().zip(message.payload.iter()).all(
                                    |((pat, _), value)| matcher.satisfies(&value.provenance, pat),
                                );
                            if all_match {
                                out.push(Redex {
                                    target: RedexTarget::Direct { thread: i },
                                    action: RedexAction::Receive {
                                        message: mi,
                                        branch: bi,
                                    },
                                });
                            }
                        }
                    }
                }
            }
            Process::Replicate(body) => {
                if replication_depth == 0 {
                    continue;
                }
                // Fast path: when the body has no top-level restriction, its
                // guarded components can be examined in place, without the
                // expensive clone-and-unfold of the general case.  The
                // component order matches `Configuration::add_process`, so
                // `sub` indices agree with what application will produce.
                let mut components = Vec::new();
                if decompose_replication_body(body, &mut components) {
                    for (sub, component) in components.iter().enumerate() {
                        match component {
                            Process::Output { .. } => out.push(Redex {
                                target: RedexTarget::Replicated { thread: i, sub },
                                action: RedexAction::Send,
                            }),
                            Process::Match { .. } => out.push(Redex {
                                target: RedexTarget::Replicated { thread: i, sub },
                                action: RedexAction::Match,
                            }),
                            Process::InputSum { channel, branches } => {
                                if let Ok((name, _)) = subject_channel(channel) {
                                    for (mi, message) in cfg.messages.iter().enumerate() {
                                        if &message.channel != name {
                                            continue;
                                        }
                                        for (bi, branch) in branches.iter().enumerate() {
                                            if branch.arity() != message.arity() {
                                                continue;
                                            }
                                            let all_match = branch
                                                .bindings
                                                .iter()
                                                .zip(message.payload.iter())
                                                .all(|((pat, _), value)| {
                                                    matcher.satisfies(&value.provenance, pat)
                                                });
                                            if all_match {
                                                out.push(Redex {
                                                    target: RedexTarget::Replicated {
                                                        thread: i,
                                                        sub,
                                                    },
                                                    action: RedexAction::Receive {
                                                        message: mi,
                                                        branch: bi,
                                                    },
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                            // Nested replications not under a guard are only
                            // explored by the general path below.
                            _ => {}
                        }
                    }
                    continue;
                }
                // General path: virtually unfold one copy and enumerate its
                // redexes (needed when the body opens fresh restrictions).
                let mut scratch = cfg.clone();
                let start = scratch.threads.len();
                unfold_replication(&mut scratch, i);
                let end = scratch.threads.len();
                let inner = enumerate_redexes_bounded(&scratch, matcher, replication_depth - 1);
                for redex in inner {
                    if let RedexTarget::Direct { thread } = redex.target {
                        if thread >= start && thread < end {
                            out.push(Redex {
                                target: RedexTarget::Replicated {
                                    thread: i,
                                    sub: thread - start,
                                },
                                action: redex.action,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Flattens a replication body into its guarded components, in the same
/// order `Configuration::add_process` would create threads for them.
///
/// Returns `false` (and should not be used) if the body contains a
/// top-level restriction, which requires the general unfold path because
/// fresh names must be generated.
fn decompose_replication_body<P: Clone>(body: &Process<P>, out: &mut Vec<Process<P>>) -> bool {
    match body {
        Process::Nil => true,
        Process::Parallel(ps) => ps.iter().all(|q| decompose_replication_body(q, out)),
        Process::Restriction { .. } => false,
        Process::InputSum { branches, .. } if branches.is_empty() => true,
        guarded => {
            out.push(guarded.clone());
            true
        }
    }
}

/// Unfolds one copy of the replication at `thread`, appending the copy's
/// guarded components to the configuration (the `*P` thread itself stays).
///
/// Returns the number of threads appended.
fn unfold_replication<P: Clone>(cfg: &mut Configuration<P>, thread: usize) -> usize {
    let (principal, body) = match &cfg.threads[thread].process {
        Process::Replicate(body) => (cfg.threads[thread].principal.clone(), (**body).clone()),
        _ => return 0,
    };
    let before = cfg.threads.len();
    cfg.add_process(principal, body);
    cfg.threads.len() - before
}

/// Applies a redex, returning the successor configuration and the step
/// event describing what happened.
///
/// # Errors
///
/// Returns a [`ReductionError`] if the redex is stale (indices out of
/// range), if the thread shape does not match, if the system is not closed,
/// or if a receive's pattern or arity no longer matches.
pub fn apply_redex<P, L>(
    cfg: &Configuration<P>,
    redex: &Redex,
    matcher: &L,
) -> Result<(Configuration<P>, StepEvent), ReductionError>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    let mut next = cfg.clone();
    let thread_index = match redex.target {
        RedexTarget::Direct { thread } => {
            if thread >= next.threads.len() {
                return Err(ReductionError::StaleRedex);
            }
            thread
        }
        RedexTarget::Replicated { thread, sub } => {
            if thread >= next.threads.len() {
                return Err(ReductionError::StaleRedex);
            }
            let start = next.threads.len();
            let added = unfold_replication(&mut next, thread);
            if sub >= added {
                return Err(ReductionError::StaleRedex);
            }
            start + sub
        }
    };
    apply_to_thread(next, thread_index, redex.action, matcher)
}

fn apply_to_thread<P, L>(
    mut cfg: Configuration<P>,
    thread_index: usize,
    action: RedexAction,
    matcher: &L,
) -> Result<(Configuration<P>, StepEvent), ReductionError>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    let thread = cfg.threads[thread_index].clone();
    match (&thread.process, action) {
        (Process::Output { channel, payload }, RedexAction::Send) => {
            let (name, channel_prov) = subject_channel(channel)?;
            let mut sent = Vec::with_capacity(payload.len());
            let mut plain = Vec::with_capacity(payload.len());
            for w in payload {
                let av = object_value(w)?;
                plain.push(av.value.clone());
                sent.push(av.sent_by(&thread.principal, channel_prov));
            }
            let message = Message {
                channel: name.clone(),
                payload: sent,
            };
            cfg.threads.remove(thread_index);
            cfg.messages.push(message);
            let event = StepEvent {
                principal: thread.principal,
                kind: StepKind::Send {
                    channel: name.clone(),
                    payload: plain,
                },
            };
            Ok((cfg, event))
        }
        (Process::InputSum { channel, branches }, RedexAction::Receive { message, branch }) => {
            if message >= cfg.messages.len() || branch >= branches.len() {
                return Err(ReductionError::StaleRedex);
            }
            let (name, channel_prov) = subject_channel(channel)?;
            let msg = cfg.messages[message].clone();
            if &msg.channel != name {
                return Err(ReductionError::StaleRedex);
            }
            let chosen = &branches[branch];
            if chosen.arity() != msg.arity() {
                return Err(ReductionError::ArityMismatch {
                    expected: msg.arity(),
                    found: chosen.arity(),
                });
            }
            let mut received = Vec::with_capacity(msg.payload.len());
            let mut plain = Vec::with_capacity(msg.payload.len());
            for ((pat, _), value) in chosen.bindings.iter().zip(msg.payload.iter()) {
                if !matcher.satisfies(&value.provenance, pat) {
                    return Err(ReductionError::PatternMismatch);
                }
                plain.push(value.value.clone());
                received.push(value.received_by(&thread.principal, channel_prov));
            }
            let binders: Vec<_> = chosen.binders().cloned().collect();
            let substitution = Substitution::parallel(&binders, &received);
            let continuation = {
                let mut supply = cfg.supply.clone();
                let p = substitution.apply_process(&chosen.continuation, &mut supply);
                cfg.supply = supply;
                p
            };
            cfg.threads.remove(thread_index);
            cfg.messages.remove(message);
            cfg.add_process(thread.principal.clone(), continuation);
            let event = StepEvent {
                principal: thread.principal,
                kind: StepKind::Receive {
                    channel: name.clone(),
                    payload: plain,
                    branch,
                },
            };
            Ok((cfg, event))
        }
        (
            Process::Match {
                lhs,
                rhs,
                then_branch,
                else_branch,
            },
            RedexAction::Match,
        ) => {
            let left = object_value(lhs)?;
            let right = object_value(rhs)?;
            // Only the plain values are compared; provenance is ignored.
            let equal = left.value == right.value;
            let continuation = if equal {
                (**then_branch).clone()
            } else {
                (**else_branch).clone()
            };
            cfg.threads.remove(thread_index);
            cfg.add_process(thread.principal.clone(), continuation);
            let event = StepEvent {
                principal: thread.principal,
                kind: if equal {
                    StepKind::IfTrue {
                        lhs: left.value.clone(),
                        rhs: right.value.clone(),
                    }
                } else {
                    StepKind::IfFalse {
                        lhs: left.value.clone(),
                        rhs: right.value.clone(),
                    }
                },
            };
            Ok((cfg, event))
        }
        _ => Err(ReductionError::RuleMismatch),
    }
}

/// Computes all one-step successors of a system, as `(event, successor)`
/// pairs.
///
/// This is the small-step relation used by the exhaustive explorers in the
/// meta-theory tests; for long runs prefer the
/// [`Executor`](crate::interpreter::Executor), which avoids repeated
/// renormalization.
///
/// # Errors
///
/// Returns an error if the system is not closed.
pub fn successors<P, L>(
    system: &System<P>,
    matcher: &L,
) -> Result<Vec<(StepEvent, System<P>)>, ReductionError>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    if let Some(x) = system.free_variables().into_iter().next() {
        return Err(ReductionError::NotClosed(x.to_string()));
    }
    let cfg = Configuration::from_system(system);
    let mut out = Vec::new();
    for redex in enumerate_redexes(&cfg, matcher) {
        let (next, event) = apply_redex(&cfg, &redex, matcher)?;
        out.push((event, next.to_system()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AnyPattern, FnMatcher, TrivialPatterns};
    use crate::process::InputBranch;
    use crate::provenance::Provenance;

    type S = System<AnyPattern>;

    fn send_recv_system() -> S {
        // a[m<v>] ‖ b[m(Any as x).x<w>]   (x used as a channel afterwards)
        System::par(
            System::located(
                "a",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "b",
                Process::input(
                    Identifier::channel("m"),
                    AnyPattern,
                    "x",
                    Process::output(Identifier::variable("x"), Identifier::channel("w")),
                ),
            ),
        )
    }

    #[test]
    fn r_send_produces_message_with_updated_provenance() {
        let cfg = Configuration::from_system(&send_recv_system());
        let redexes = enumerate_redexes(&cfg, &TrivialPatterns);
        // only the send is enabled (no message yet for the input)
        assert_eq!(redexes.len(), 1);
        let (next, event) = apply_redex(&cfg, &redexes[0], &TrivialPatterns).unwrap();
        assert_eq!(next.message_count(), 1);
        assert_eq!(next.thread_count(), 1);
        let msg = &next.messages[0];
        assert_eq!(msg.channel, Channel::new("m"));
        assert_eq!(msg.payload[0].provenance.to_string(), "a!ε");
        match event.kind {
            StepKind::Send {
                ref channel,
                ref payload,
            } => {
                assert_eq!(channel, &Channel::new("m"));
                assert_eq!(payload, &vec![Value::Channel(Channel::new("v"))]);
            }
            ref other => panic!("unexpected event {:?}", other),
        }
    }

    #[test]
    fn r_recv_substitutes_and_updates_provenance() {
        let cfg = Configuration::from_system(&send_recv_system());
        let matcher = TrivialPatterns;
        let send = enumerate_redexes(&cfg, &matcher)[0];
        let (cfg, _) = apply_redex(&cfg, &send, &matcher).unwrap();
        let redexes = enumerate_redexes(&cfg, &matcher);
        assert_eq!(redexes.len(), 1, "only the receive should be enabled");
        let (cfg, event) = apply_redex(&cfg, &redexes[0], &matcher).unwrap();
        assert_eq!(cfg.message_count(), 0);
        assert_eq!(cfg.thread_count(), 1);
        // b's continuation is x<w> with x := v : b?ε; a!ε
        match &cfg.threads[0].process {
            Process::Output { channel, .. } => match channel {
                Identifier::Value(av) => {
                    assert_eq!(av.value, Value::Channel(Channel::new("v")));
                    assert_eq!(av.provenance.to_string(), "b?ε; a!ε");
                }
                other => panic!("unexpected identifier {:?}", other),
            },
            other => panic!("unexpected process {:?}", other),
        }
        match event.kind {
            StepKind::Receive { ref channel, .. } => assert_eq!(channel, &Channel::new("m")),
            ref other => panic!("unexpected event {:?}", other),
        }
    }

    #[test]
    fn r_ift_and_r_iff_ignore_provenance() {
        // a[if v:κ1 = v:κ2 then m<v> else n<v>] — equal plain values, different provenance.
        let k1 = Provenance::single(crate::provenance::Event::output(
            Principal::new("x"),
            Provenance::empty(),
        ));
        let thenp = Process::output(Identifier::channel("m"), Identifier::channel("v"));
        let elsep = Process::output(Identifier::channel("n"), Identifier::channel("v"));
        let s: S = System::located(
            "a",
            Process::matching(
                Identifier::Value(AnnotatedValue::new(Channel::new("v"), k1)),
                Identifier::channel("v"),
                thenp.clone(),
                elsep.clone(),
            ),
        );
        let succ = successors(&s, &TrivialPatterns).unwrap();
        assert_eq!(succ.len(), 1);
        let (event, next) = &succ[0];
        assert!(matches!(event.kind, StepKind::IfTrue { .. }));
        assert!(crate::configuration::structurally_congruent(
            next,
            &System::located("a", thenp)
        ));

        // Different plain values take the else branch.
        let s2: S = System::located(
            "a",
            Process::matching(
                Identifier::channel("u"),
                Identifier::channel("v"),
                Process::nil(),
                elsep.clone(),
            ),
        );
        let succ2 = successors(&s2, &TrivialPatterns).unwrap();
        assert_eq!(succ2.len(), 1);
        assert!(matches!(succ2[0].0.kind, StepKind::IfFalse { .. }));
        assert!(crate::configuration::structurally_congruent(
            &succ2[0].1,
            &System::located("a", elsep)
        ));
    }

    #[test]
    fn receive_respects_patterns() {
        // Pattern language: maximum provenance length.  Message provenance has
        // length 1 after the send, so a branch demanding length 0 is disabled.
        let matcher: FnMatcher<usize> = FnMatcher::new(|k, max| k.len() <= *max);
        let system: System<usize> = System::par(
            System::located(
                "a",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "b",
                Process::input_sum(
                    Identifier::channel("m"),
                    vec![
                        InputBranch::monadic(0usize, "x", Process::nil()),
                        InputBranch::monadic(5usize, "y", Process::nil()),
                    ],
                ),
            ),
        );
        let cfg = Configuration::from_system(&system);
        let send = enumerate_redexes(&cfg, &matcher)[0];
        let (cfg, _) = apply_redex(&cfg, &send, &matcher).unwrap();
        let redexes = enumerate_redexes(&cfg, &matcher);
        assert_eq!(redexes.len(), 1, "only the permissive branch matches");
        match redexes[0].action {
            RedexAction::Receive { branch, .. } => assert_eq!(branch, 1),
            other => panic!("unexpected action {:?}", other),
        }
    }

    #[test]
    fn nondeterministic_market_has_two_successors() {
        // a[n<v1>] ‖ b[n<v2>] ‖ c[n(x).0] — after both sends, c can take either.
        let s: S = System::par_all(vec![
            System::located(
                "a",
                Process::output(Identifier::channel("n"), Identifier::channel("v1")),
            ),
            System::located(
                "b",
                Process::output(Identifier::channel("n"), Identifier::channel("v2")),
            ),
            System::located(
                "c",
                Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
            ),
        ]);
        let m = TrivialPatterns;
        let mut cfg = Configuration::from_system(&s);
        // Fire both sends.
        for _ in 0..2 {
            let sends: Vec<_> = enumerate_redexes(&cfg, &m)
                .into_iter()
                .filter(|r| r.action == RedexAction::Send)
                .collect();
            let (next, _) = apply_redex(&cfg, &sends[0], &m).unwrap();
            cfg = next;
        }
        let receives = enumerate_redexes(&cfg, &m);
        assert_eq!(receives.len(), 2, "the consumer may pick either value");
    }

    #[test]
    fn replication_unfolds_lazily() {
        // o[*(sub(Any as x).res<x>)] ‖ sub<<v>>
        let s: S = System::par(
            System::located(
                "o",
                Process::replicate(Process::input(
                    Identifier::channel("sub"),
                    AnyPattern,
                    "x",
                    Process::output(Identifier::channel("res"), Identifier::variable("x")),
                )),
            ),
            System::message(Message::new("sub", AnnotatedValue::channel("v"))),
        );
        let m = TrivialPatterns;
        let cfg = Configuration::from_system(&s);
        let redexes = enumerate_redexes(&cfg, &m);
        assert_eq!(redexes.len(), 1);
        assert!(matches!(redexes[0].target, RedexTarget::Replicated { .. }));
        let (next, event) = apply_redex(&cfg, &redexes[0], &m).unwrap();
        assert!(matches!(event.kind, StepKind::Receive { .. }));
        // The replication survives and the continuation is spawned.
        assert_eq!(next.thread_count(), 2);
        assert_eq!(next.message_count(), 0);
        assert!(next
            .threads
            .iter()
            .any(|t| matches!(t.process, Process::Replicate(_))));
    }

    #[test]
    fn successors_rejects_open_systems() {
        let s: S = System::located(
            "a",
            Process::output(Identifier::variable("x"), Identifier::channel("v")),
        );
        let err = successors(&s, &TrivialPatterns).unwrap_err();
        assert!(matches!(err, ReductionError::NotClosed(_)));
    }

    #[test]
    fn sending_on_a_principal_is_an_error() {
        let s: S = System::located(
            "a",
            Process::output(Identifier::principal("b"), Identifier::channel("v")),
        );
        let cfg = Configuration::from_system(&s);
        let redexes = enumerate_redexes(&cfg, &TrivialPatterns);
        assert_eq!(redexes.len(), 1);
        let err = apply_redex(&cfg, &redexes[0], &TrivialPatterns).unwrap_err();
        assert!(matches!(err, ReductionError::NotAChannel(_)));
    }

    #[test]
    fn arity_mismatch_blocks_receive() {
        let s: S = System::par(
            System::message(Message::tuple(
                "m",
                vec![AnnotatedValue::channel("v"), AnnotatedValue::channel("w")],
            )),
            System::located(
                "b",
                Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil()),
            ),
        );
        let cfg = Configuration::from_system(&s);
        let redexes = enumerate_redexes(&cfg, &TrivialPatterns);
        assert!(redexes.is_empty(), "monadic input cannot consume a pair");
    }

    #[test]
    fn stale_redex_detected() {
        let cfg = Configuration::from_system(&send_recv_system());
        let redex = Redex {
            target: RedexTarget::Direct { thread: 99 },
            action: RedexAction::Send,
        };
        assert_eq!(
            apply_redex(&cfg, &redex, &TrivialPatterns).unwrap_err(),
            ReductionError::StaleRedex
        );
    }

    #[test]
    fn step_event_display() {
        let ev = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::Send {
                channel: Channel::new("m"),
                payload: vec![Value::Channel(Channel::new("v"))],
            },
        };
        assert_eq!(ev.to_string(), "a.snd(m, v)");
        assert!(ev.is_communication());
        let ev2 = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::IfTrue {
                lhs: Value::Channel(Channel::new("v")),
                rhs: Value::Channel(Channel::new("v")),
            },
        };
        assert_eq!(ev2.to_string(), "a.ift(v, v)");
        assert!(!ev2.is_communication());
    }
}
