//! # piprov-core
//!
//! Core syntax and provenance-tracking reduction semantics of the
//! *provenance calculus* of Souilah, Francalanza and Sassone,
//! "A Formal Model of Provenance in Distributed Systems" (2009).
//!
//! The calculus is an asynchronous pi-calculus extended with explicit
//! principal identities, provenance-annotated data, a provenance-tracking
//! reduction semantics, and pattern-restricted input.  This crate provides:
//!
//! * the syntax of processes and systems ([`process`], [`system`]),
//! * provenance sequences and events ([`provenance`]),
//! * the parametric pattern-language interface ([`pattern`]),
//! * capture-avoiding substitution ([`subst`]),
//! * structural congruence and configurations ([`configuration`]),
//! * the reduction relation with provenance tracking ([`reduction`]),
//! * a stepwise executor with pluggable schedulers ([`interpreter`]),
//! * a random system generator for property-based testing ([`generate`]).
//!
//! The sample pattern language of the paper's Table 3 lives in the
//! companion crate `piprov-patterns`; logs, monitored systems and the
//! correctness results of §3 live in `piprov-logs`.
//!
//! ## Quick example
//!
//! The paper's introductory "market of values" scenario: two producers and
//! one consumer share a channel, and provenance tracking records who sent
//! what.
//!
//! ```
//! use piprov_core::pattern::{AnyPattern, TrivialPatterns};
//! use piprov_core::process::Process;
//! use piprov_core::system::System;
//! use piprov_core::value::Identifier;
//! use piprov_core::interpreter::Executor;
//!
//! let system: System<AnyPattern> = System::par_all(vec![
//!     System::located("a", Process::output(Identifier::channel("n"), Identifier::channel("v1"))),
//!     System::located("b", Process::output(Identifier::channel("n"), Identifier::channel("v2"))),
//!     System::located("c", Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil())),
//! ]);
//!
//! let mut exec = Executor::new(&system, TrivialPatterns);
//! let outcome = exec.run(100)?;
//! assert!(outcome.steps >= 3);
//! # Ok::<(), piprov_core::reduction::ReductionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod configuration;
pub mod generate;
pub mod interpreter;
pub mod name;
pub mod pattern;
pub mod process;
pub mod provenance;
pub mod reduction;
pub mod subst;
pub mod system;
pub mod value;

pub use configuration::{structurally_congruent, Configuration};
pub use interpreter::{Executor, RunOutcome, SchedulerPolicy, StopReason};
pub use name::{Channel, NameSupply, Principal, Variable};
pub use pattern::{AnyPattern, PatternLanguage, TrivialPatterns};
pub use process::{InputBranch, Process};
pub use provenance::{
    interner_shard_stats, interner_stats, Direction, Event, InternTable, InternerStats, ProvId,
    Provenance, ShardStats,
};
pub use reduction::{
    apply_redex, enumerate_redexes, successors, Redex, ReductionError, StepEvent, StepKind,
};
pub use subst::Substitution;
pub use system::{Message, System};
pub use value::{AnnotatedValue, Identifier, Value};
