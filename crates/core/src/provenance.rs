//! Provenance sequences and events.
//!
//! The provenance `κ` of a value is a sequence of events `e₁; …; eₙ`,
//! temporally ordered with the *most recent event first*.  An event is
//! either an output event `a!κ` (the value was sent by principal `a` on a
//! channel whose provenance is `κ`) or an input event `a?κ` (the value was
//! received by principal `a` on a channel whose provenance is `κ`).
//!
//! The canonical representation here is a persistent, structurally shared
//! cons list: the common operation during reduction is prefixing a single
//! event (`κ ↦ a!κₘ; κ`), which is O(1) and shares the entire old sequence.
//! A flat, eagerly cloned representation used for the representation
//! ablation (experiment E9 in `DESIGN.md`) lives in [`compact`].

use crate::name::Principal;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The direction of a provenance event: output (`!`) or input (`?`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The value was sent.
    Output,
    /// The value was received.
    Input,
}

impl Direction {
    /// The symbol used in the paper's notation: `!` for output, `?` for input.
    pub fn symbol(self) -> char {
        match self {
            Direction::Output => '!',
            Direction::Input => '?',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A single provenance event `a!κ` or `a?κ`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The principal that performed the send or receive.
    pub principal: Principal,
    /// Whether the event is an output (`!`) or an input (`?`).
    pub direction: Direction,
    /// The provenance of the *channel* on which the exchange happened.
    pub channel_provenance: Provenance,
}

impl Event {
    /// Builds an output event `principal!channel_provenance`.
    pub fn output(principal: impl Into<Principal>, channel_provenance: Provenance) -> Self {
        Event {
            principal: principal.into(),
            direction: Direction::Output,
            channel_provenance,
        }
    }

    /// Builds an input event `principal?channel_provenance`.
    pub fn input(principal: impl Into<Principal>, channel_provenance: Provenance) -> Self {
        Event {
            principal: principal.into(),
            direction: Direction::Input,
            channel_provenance,
        }
    }

    /// Returns `true` if this is an output event.
    pub fn is_output(&self) -> bool {
        self.direction == Direction::Output
    }

    /// Returns `true` if this is an input event.
    pub fn is_input(&self) -> bool {
        self.direction == Direction::Input
    }

    /// Total number of events reachable from this event, including itself
    /// and everything nested inside the channel provenance.
    pub fn total_size(&self) -> usize {
        1 + self.channel_provenance.total_size()
    }

    /// Nesting depth of the event (an event over an empty channel
    /// provenance has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.channel_provenance.depth()
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.channel_provenance.is_empty() {
            write!(f, "{}{}ε", self.principal, self.direction)
        } else {
            write!(
                f,
                "{}{}[{}]",
                self.principal, self.direction, self.channel_provenance
            )
        }
    }
}

#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Node {
    Nil,
    Cons(Event, Provenance),
}

/// A provenance sequence `κ ::= ε | e | κ;κ`, kept in the flattened
/// (right-associated) normal form the paper works with: a list of events,
/// most recent first.
///
/// `Provenance` values are immutable and cheap to clone; prefixing an event
/// with [`Provenance::prepend`] is O(1) and shares the tail.
///
/// ```
/// use piprov_core::provenance::{Event, Provenance};
///
/// let kappa = Provenance::empty()
///     .prepend(Event::output("a", Provenance::empty()))
///     .prepend(Event::input("b", Provenance::empty()));
/// assert_eq!(kappa.to_string(), "b?ε; a!ε");
/// assert_eq!(kappa.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Provenance {
    node: Arc<Node>,
    len: usize,
}

impl Provenance {
    /// The empty provenance sequence `ε`: the value originated locally and
    /// has never been exchanged.
    pub fn empty() -> Self {
        Provenance {
            node: Arc::new(Node::Nil),
            len: 0,
        }
    }

    /// Builds a provenance sequence from events given *most recent first*.
    pub fn from_events<I>(events: I) -> Self
    where
        I: IntoIterator<Item = Event>,
        I::IntoIter: DoubleEndedIterator,
    {
        let mut acc = Provenance::empty();
        for ev in events.into_iter().rev() {
            acc = acc.prepend(ev);
        }
        acc
    }

    /// Builds a provenance holding a single event.
    pub fn single(event: Event) -> Self {
        Provenance::empty().prepend(event)
    }

    /// Returns a new sequence with `event` as the new most-recent event.
    ///
    /// This is the operation performed by the provenance-tracking reduction
    /// rules: `κ ↦ a!κₘ; κ` on output and `κ ↦ a?κₘ; κ` on input.
    pub fn prepend(&self, event: Event) -> Self {
        Provenance {
            len: self.len + 1,
            node: Arc::new(Node::Cons(event, self.clone())),
        }
    }

    /// Concatenates two sequences: `self ; other` (all of `self` is more
    /// recent than all of `other`).
    pub fn concat(&self, other: &Provenance) -> Self {
        if other.is_empty() {
            return self.clone();
        }
        let mut acc = other.clone();
        for ev in self.iter().collect::<Vec<_>>().into_iter().rev() {
            acc = acc.prepend(ev.clone());
        }
        acc
    }

    /// `true` when the sequence is `ε`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of top-level events in the sequence (nested channel
    /// provenances are not counted; see [`Provenance::total_size`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// The most recent event, if any.
    pub fn head(&self) -> Option<&Event> {
        match &*self.node {
            Node::Nil => None,
            Node::Cons(ev, _) => Some(ev),
        }
    }

    /// Everything but the most recent event.  Returns `None` on `ε`.
    pub fn tail(&self) -> Option<&Provenance> {
        match &*self.node {
            Node::Nil => None,
            Node::Cons(_, rest) => Some(rest),
        }
    }

    /// Iterates over the top-level events, most recent first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { current: self }
    }

    /// Collects the top-level events into a vector, most recent first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().cloned().collect()
    }

    /// Total number of events including those nested inside channel
    /// provenances.  This is the quantity that grows during long runs and
    /// drives the tracking-overhead experiments.
    pub fn total_size(&self) -> usize {
        self.iter().map(Event::total_size).sum()
    }

    /// Maximum nesting depth of channel provenances (ε has depth 0).
    pub fn depth(&self) -> usize {
        self.iter().map(Event::depth).max().unwrap_or(0)
    }

    /// All principals mentioned anywhere in the sequence, in order of first
    /// appearance (most recent first), without duplicates.
    ///
    /// This is the basis of the auditing example of the paper: the
    /// principals that "were involved" with a value.
    pub fn principals_involved(&self) -> Vec<Principal> {
        let mut out: Vec<Principal> = Vec::new();
        self.collect_principals(&mut out);
        out
    }

    fn collect_principals(&self, out: &mut Vec<Principal>) {
        for ev in self.iter() {
            if !out.contains(&ev.principal) {
                out.push(ev.principal.clone());
            }
            ev.channel_provenance.collect_principals(out);
        }
    }

    /// `true` if the most recent event is an output by `principal`.
    ///
    /// Corresponds to the "immediate sender" authentication check of the
    /// paper's first example.
    pub fn last_sent_by(&self, principal: &Principal) -> bool {
        matches!(self.head(), Some(ev) if ev.is_output() && &ev.principal == principal)
    }

    /// `true` if the *oldest* top-level event is an output by `principal`,
    /// i.e. the value originated at `principal`.
    ///
    /// Corresponds to the "original sender" authentication check of the
    /// paper's first example.
    pub fn originated_at(&self, principal: &Principal) -> bool {
        let events = self.to_vec();
        matches!(events.last(), Some(ev) if ev.is_output() && &ev.principal == principal)
    }
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance::empty()
    }
}

impl FromIterator<Event> for Provenance {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Provenance::from_events(iter.into_iter().collect::<Vec<_>>())
    }
}

impl<'a> IntoIterator for &'a Provenance {
    type Item = &'a Event;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the top-level events of a [`Provenance`], most recent first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    current: &'a Provenance,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a Event;

    fn next(&mut self) -> Option<Self::Item> {
        match &*self.current.node {
            Node::Nil => None,
            Node::Cons(ev, rest) => {
                self.current = rest;
                Some(ev)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.current.len, Some(self.current.len))
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

impl fmt::Debug for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        let mut first = true;
        for ev in self.iter() {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "{}", ev)?;
        }
        Ok(())
    }
}

pub mod compact {
    //! A flat, eagerly cloned provenance representation used as the ablation
    //! baseline for the persistent representation (experiment E9).
    //!
    //! Functionally equivalent to [`Provenance`](super::Provenance) but every
    //! prepend copies the whole vector, so cost grows linearly with history
    //! length — this is what a naive implementation of the paper would do.

    use super::{Direction, Event, Provenance};
    use crate::name::Principal;

    /// A flat provenance sequence: a vector of events, most recent first.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    pub struct FlatProvenance {
        events: Vec<FlatEvent>,
    }

    /// A flat event mirroring [`Event`](super::Event).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FlatEvent {
        /// Principal that performed the action.
        pub principal: Principal,
        /// Send or receive.
        pub direction: Direction,
        /// Provenance of the channel used.
        pub channel_provenance: FlatProvenance,
    }

    impl FlatProvenance {
        /// The empty sequence.
        pub fn empty() -> Self {
            FlatProvenance { events: Vec::new() }
        }

        /// Number of top-level events.
        pub fn len(&self) -> usize {
            self.events.len()
        }

        /// `true` when empty.
        pub fn is_empty(&self) -> bool {
            self.events.is_empty()
        }

        /// Prepends an event by copying the entire sequence.
        pub fn prepend(&self, event: FlatEvent) -> Self {
            let mut events = Vec::with_capacity(self.events.len() + 1);
            events.push(event);
            events.extend(self.events.iter().cloned());
            FlatProvenance { events }
        }

        /// Converts to the canonical shared representation.
        pub fn to_shared(&self) -> Provenance {
            Provenance::from_events(self.events.iter().map(|ev| Event {
                principal: ev.principal.clone(),
                direction: ev.direction,
                channel_provenance: ev.channel_provenance.to_shared(),
            }))
        }

        /// Builds a flat copy of a shared provenance sequence.
        pub fn from_shared(p: &Provenance) -> Self {
            FlatProvenance {
                events: p
                    .iter()
                    .map(|ev| FlatEvent {
                        principal: ev.principal.clone(),
                        direction: ev.direction,
                        channel_provenance: FlatEvent::flatten(&ev.channel_provenance),
                    })
                    .collect(),
            }
        }
    }

    impl FlatEvent {
        fn flatten(p: &Provenance) -> FlatProvenance {
            FlatProvenance::from_shared(p)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::provenance::{Event, Provenance};

        #[test]
        fn round_trip_between_representations() {
            let shared = Provenance::from_events(vec![
                Event::input(
                    "b",
                    Provenance::single(Event::output("x", Provenance::empty())),
                ),
                Event::output("a", Provenance::empty()),
            ]);
            let flat = FlatProvenance::from_shared(&shared);
            assert_eq!(flat.len(), 2);
            assert_eq!(flat.to_shared(), shared);
        }

        #[test]
        fn flat_prepend_matches_shared_prepend() {
            let base = Provenance::single(Event::output("a", Provenance::empty()));
            let flat = FlatProvenance::from_shared(&base);
            let ev = Event::input("b", Provenance::empty());
            let flat_ev = FlatEvent {
                principal: ev.principal.clone(),
                direction: ev.direction,
                channel_provenance: FlatProvenance::empty(),
            };
            assert_eq!(flat.prepend(flat_ev).to_shared(), base.prepend(ev));
        }

        #[test]
        fn empty_flat_is_empty_shared() {
            assert_eq!(FlatProvenance::empty().to_shared(), Provenance::empty());
            assert!(FlatProvenance::empty().is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Principal {
        Principal::new("a")
    }
    fn b() -> Principal {
        Principal::new("b")
    }

    #[test]
    fn empty_has_no_events() {
        let e = Provenance::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.head(), None);
        assert_eq!(e.tail(), None);
        assert_eq!(e.to_string(), "ε");
        assert_eq!(e.depth(), 0);
        assert_eq!(e.total_size(), 0);
    }

    #[test]
    fn prepend_puts_most_recent_first() {
        let k = Provenance::empty()
            .prepend(Event::output(a(), Provenance::empty()))
            .prepend(Event::input(b(), Provenance::empty()));
        let events = k.to_vec();
        assert_eq!(events.len(), 2);
        assert!(events[0].is_input());
        assert_eq!(events[0].principal, b());
        assert!(events[1].is_output());
        assert_eq!(events[1].principal, a());
    }

    #[test]
    fn from_events_preserves_order() {
        let e1 = Event::output(a(), Provenance::empty());
        let e2 = Event::input(b(), Provenance::empty());
        let k = Provenance::from_events(vec![e1.clone(), e2.clone()]);
        assert_eq!(k.to_vec(), vec![e1, e2]);
    }

    #[test]
    fn concat_orders_left_before_right() {
        let left = Provenance::single(Event::output(a(), Provenance::empty()));
        let right = Provenance::single(Event::input(b(), Provenance::empty()));
        let joined = left.concat(&right);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.to_vec()[0], left.to_vec()[0]);
        assert_eq!(joined.to_vec()[1], right.to_vec()[0]);
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let k = Provenance::single(Event::output(a(), Provenance::empty()));
        assert_eq!(k.concat(&Provenance::empty()), k);
        assert_eq!(Provenance::empty().concat(&k), k);
    }

    #[test]
    fn display_matches_paper_notation() {
        let km = Provenance::single(Event::output(a(), Provenance::empty()));
        let k = Provenance::single(Event::input(b(), km));
        assert_eq!(k.to_string(), "b?[a!ε]");
    }

    #[test]
    fn total_size_counts_nested_events() {
        let inner = Provenance::single(Event::output(a(), Provenance::empty()));
        let outer = Provenance::single(Event::input(b(), inner.clone())).prepend(Event::output(
            a(),
            Provenance::single(Event::input(b(), inner)),
        ));
        // outer has two top-level events; first has 2 nested (b? + a!), second has 1.
        assert_eq!(outer.total_size(), 2 + 1 + 2);
        assert_eq!(outer.depth(), 3);
    }

    #[test]
    fn principals_involved_deduplicates_in_order() {
        let km = Provenance::single(Event::output(b(), Provenance::empty()));
        let k = Provenance::from_events(vec![
            Event::input(a(), km),
            Event::output(a(), Provenance::empty()),
            Event::output(b(), Provenance::empty()),
        ]);
        assert_eq!(k.principals_involved(), vec![a(), b()]);
    }

    #[test]
    fn authentication_helpers() {
        // κ = c! ; b? ; d!   (most recent first)
        let k = Provenance::from_events(vec![
            Event::output(Principal::new("c"), Provenance::empty()),
            Event::input(b(), Provenance::empty()),
            Event::output(Principal::new("d"), Provenance::empty()),
        ]);
        assert!(k.last_sent_by(&Principal::new("c")));
        assert!(!k.last_sent_by(&Principal::new("d")));
        assert!(k.originated_at(&Principal::new("d")));
        assert!(!k.originated_at(&Principal::new("c")));
        assert!(!Provenance::empty().last_sent_by(&a()));
        assert!(!Provenance::empty().originated_at(&a()));
    }

    #[test]
    fn clone_shares_structure() {
        let base = Provenance::from_events(vec![Event::output(a(), Provenance::empty())]);
        let extended = base.prepend(Event::input(b(), Provenance::empty()));
        // The tail of the extended sequence is the same allocation as `base`.
        assert_eq!(extended.tail(), Some(&base));
        assert_eq!(base.len(), 1);
        assert_eq!(extended.len(), 2);
    }

    #[test]
    fn equality_is_structural() {
        let k1 = Provenance::from_events(vec![
            Event::output(a(), Provenance::empty()),
            Event::input(b(), Provenance::empty()),
        ]);
        let k2 = Provenance::empty()
            .prepend(Event::input(b(), Provenance::empty()))
            .prepend(Event::output(a(), Provenance::empty()));
        assert_eq!(k1, k2);
    }

    #[test]
    fn iterator_is_exact_size() {
        let k = Provenance::from_events(vec![
            Event::output(a(), Provenance::empty()),
            Event::input(b(), Provenance::empty()),
        ]);
        let it = k.iter();
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
    }
}
