//! The thread-safe audit engine with MVCC snapshot reads.
//!
//! An [`AuditEngine`] owns a [`ProvenanceStore`] (the durable log) and a
//! versioned registry of named, pre-compiled policy patterns (see
//! [`crate::registry`]) — but audit queries never touch the store or its
//! reader-writer lock.  Instead, the ingest
//! path publishes an immutable [`EngineSnapshot`] (`Arc`'d record chunks +
//! a structurally shared [`piprov_store::SharedStoreIndex`] + a sequence
//! watermark) once per applied batch, and [`AuditEngine::handle`] answers
//! every request from the snapshot current at its start.  Ingest can no
//! longer starve readers: however large the batch being applied, auditors
//! keep answering from the previously published snapshot, and pay only a
//! snapshot load to reach it — an `Arc` clone under a latch held for the
//! pointer operation alone (see [`crate::snapshot`]), never for the
//! duration of a batch.
//!
//! # Consistency contract
//!
//! * **Batch atomicity** — a snapshot is published only after a whole
//!   ingest batch is appended, so no query ever observes a half-applied
//!   batch: a response mentions either none of a batch's records or all
//!   of the ones relevant to it, and never a record above its snapshot's
//!   watermark.
//! * **Monotone watermarks** — publications are ordered by the store's
//!   write lock, so the watermark carried by every [`AuditResponse`] is
//!   non-decreasing across any sequence of requests to one engine.
//! * **Read-your-writes** — [`AuditEngine::ingest_batch`] publishes
//!   before it returns: a caller that observes the returned sequence
//!   numbers (or polls [`AuditEngine::watermark`], or the wire layer's
//!   `Flushed` watermark) is guaranteed the next request answers at or
//!   above that watermark.
//! * **Repeatable reads** — pin a snapshot with [`AuditEngine::snapshot`]
//!   and serve any number of requests from it via
//!   [`AuditEngine::handle_at`]: all of them see the same frozen state.
//!
//! Two further shared structures make the concurrency real rather than
//! nominal: the core provenance interner is sharded (auditor threads
//! re-interning decoded histories contend per shard, not on one global
//! mutex), and each registered pattern's `(ProvId, state set)` memo is
//! bounded with epoch-based eviction ([`AuditConfig::memo_bound`]), so a
//! long-lived engine cannot grow without bound.

use crate::causal::{filtered_view, CounterfactualVerdict, EventFilter, WhySlice};
use crate::metrics::{MetricsRegistry, VetOutcomeKind};
use crate::registry::{
    PackInstall, PolicyEntry, PolicyInfo, PolicyListing, PolicyRegistry, PolicySet,
};
use crate::request::{AuditOutcome, AuditRequest, AuditResponse, RequestStats};
use crate::snapshot::{EngineSnapshot, SnapshotCell};
use piprov_patterns::{CompiledPattern, MatchStats, MemoStats, Pattern};
use piprov_policy::PolicyPack;
use piprov_store::{ProvenanceRecord, ProvenanceStore, SequenceNumber, StoreError, StoreStats};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Configuration of an [`AuditEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Bound on each registered pattern's match memo (per automaton
    /// level); see [`piprov_patterns::DEFAULT_MEMO_BOUND`].
    pub memo_bound: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            memo_bound: piprov_patterns::DEFAULT_MEMO_BOUND,
        }
    }
}

/// Monotone counters (and one gauge) accumulated over the engine's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests served, by any thread.
    pub requests: u64,
    /// Records ingested.
    pub ingested: u64,
    /// Vet requests that answered `true`.
    pub vets_passed: u64,
    /// Vet requests that answered `false`.
    pub vets_failed: u64,
    /// Posting-list entries supplied by the store indexes, summed over
    /// all requests.
    pub index_hits: u64,
    /// Pattern-memo hits, summed over all vet requests.
    pub memo_hits: u64,
    /// Ingest batches applied (each under a single write-lock
    /// acquisition); single-record [`AuditEngine::ingest`] calls count as
    /// one-record batches.
    pub ingest_batches: u64,
    /// Ingest batches rejected with a typed `Busy` because the bounded
    /// ingest queue was full.
    pub busy_rejections: u64,
    /// **Gauge**: batches currently waiting in the ingest queue (0 when no
    /// queue is attached; see [`crate::IngestQueue`]).
    pub queue_depth: u64,
    /// Snapshots published over the engine's lifetime (one per applied
    /// ingest batch; the recovery snapshot is not counted).
    pub snapshots_published: u64,
    /// **Gauge**: ingest-queue batches accepted but not yet visible to
    /// snapshot readers (waiting in the queue or mid-application) — the
    /// read-side staleness an operator watches where `queue_depth` alone
    /// would hide the batch currently being applied.
    pub snapshot_lag: u64,
    /// **Gauge**: the currently published snapshot's watermark — the
    /// highest sequence number visible to readers.
    pub watermark: u64,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exhaustive destructuring (no `..`): adding a field to
        // `EngineStats` without rendering it here is a compile error, so
        // the human-readable surface cannot silently fall behind the
        // struct (the exposition writer in `crate::metrics` makes the same
        // guarantee for the Prometheus surface).
        let EngineStats {
            requests,
            ingested,
            vets_passed,
            vets_failed,
            index_hits,
            memo_hits,
            ingest_batches,
            busy_rejections,
            queue_depth,
            snapshots_published,
            snapshot_lag,
            watermark,
        } = *self;
        write!(
            f,
            "{} requests ({} vets: {} pass / {} fail), {} ingested in {} batches \
             ({} busy rejections, queue depth {}), {} index hits, {} memo hits, \
             watermark {} ({} snapshots published, lag {})",
            requests,
            vets_passed + vets_failed,
            vets_passed,
            vets_failed,
            ingested,
            ingest_batches,
            busy_rejections,
            queue_depth,
            index_hits,
            memo_hits,
            watermark,
            snapshots_published,
            snapshot_lag
        )
    }
}

/// A concurrent audit service over a provenance store and a registry of
/// compiled policy patterns.
///
/// The engine is `Sync`: share it across auditor threads behind an
/// [`Arc`] and call [`AuditEngine::handle`] from each.
#[derive(Debug)]
pub struct AuditEngine {
    /// The durable log.  Writers only: audit queries answer from the
    /// published snapshot and never acquire this lock in any mode.
    store: RwLock<ProvenanceStore>,
    /// The published [`EngineSnapshot`] every query reads.
    snapshot: SnapshotCell,
    /// The versioned policy registry.  Requests load one immutable
    /// [`PolicySet`] at entry; pack installation publishes the next
    /// set with a single pointer swap (see [`crate::registry`]).
    registry: PolicyRegistry,
    config: AuditConfig,
    /// Per-policy verdict counters and latency histograms (see
    /// [`crate::metrics`]).
    metrics: MetricsRegistry,
    /// When this engine was opened — the `piprov_uptime_seconds` anchor.
    started: Instant,
    requests: AtomicU64,
    ingested: AtomicU64,
    vets_passed: AtomicU64,
    vets_failed: AtomicU64,
    index_hits: AtomicU64,
    memo_hits: AtomicU64,
    ingest_batches: AtomicU64,
    busy_rejections: AtomicU64,
    queue_depth: AtomicU64,
    snapshots_published: AtomicU64,
    snapshot_lag: AtomicU64,
}

impl AuditEngine {
    /// Opens (or creates) a store in `directory` and wraps it in an
    /// engine with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ProvenanceStore::open`] failures.
    pub fn open(directory: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(AuditEngine::new(ProvenanceStore::open(directory)?))
    }

    /// Wraps an already-open store with the default configuration.
    pub fn new(store: ProvenanceStore) -> Self {
        AuditEngine::with_config(store, AuditConfig::default())
    }

    /// Wraps an already-open store with an explicit configuration.
    pub fn with_config(store: ProvenanceStore, config: AuditConfig) -> Self {
        let recovered = EngineSnapshot::from_records(store.iter().cloned().collect());
        AuditEngine {
            store: RwLock::new(store),
            snapshot: SnapshotCell::new(recovered),
            registry: PolicyRegistry::new(),
            config,
            metrics: MetricsRegistry::new(),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            vets_passed: AtomicU64::new(0),
            vets_failed: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            snapshot_lag: AtomicU64::new(0),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Compiles `pattern` and registers it under `name`, replacing any
    /// previous pattern of that name.  The compiled automaton's memo (and
    /// every nested channel automaton's) is bounded by
    /// [`AuditConfig::memo_bound`].
    ///
    /// A programmatic registration is a one-policy copy-on-write edit of
    /// the current [`PolicySet`]: it bumps the pack version like a pack
    /// install does, and in-flight requests keep the set they loaded.
    pub fn register_pattern(&self, name: impl Into<String>, pattern: Pattern) {
        let name = name.into();
        let compiled = CompiledPattern::compile(&pattern);
        compiled.set_memo_bound(self.config.memo_bound);
        // Register with the metrics plane first so a vet racing this
        // registration always finds the policy's histogram in place; a
        // replaced pattern keeps its metric timeline.
        self.metrics.register_policy(&name);
        let entry = Arc::new(PolicyEntry {
            package: String::new(),
            source: pattern.to_string(),
            compiled: Arc::new(compiled),
        });
        let current = self.registry.load();
        let mut next: HashMap<String, Arc<PolicyEntry>> = current
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(e)))
            .collect();
        next.insert(name, entry);
        self.registry.publish(next);
    }

    /// Installs a compiled policy pack as the engine's **entire** policy
    /// set, atomically.
    ///
    /// The next [`PolicySet`] is built off to the side — NFA compilation,
    /// memo bounds, metrics rows — and published with one pointer swap.
    /// In-flight requests keep answering from the set they loaded at
    /// entry, so no vet ever observes a half-installed pack; the caller
    /// is responsible for all-or-nothing *compilation* (a
    /// [`piprov_policy::PackError`] never reaches this method).
    ///
    /// A policy whose name, package, and canonical source are unchanged
    /// from the current set keeps its compiled automaton: memo state and
    /// metric timeline carry over ([`PackInstall::reused`] counts them).
    /// Policies absent from the pack — including programmatic
    /// [`AuditEngine::register_pattern`] registrations — are dropped and
    /// their metric rows retired.
    pub fn install_pack(&self, pack: &PolicyPack) -> PackInstall {
        let current = self.registry.load();
        let mut next: HashMap<String, Arc<PolicyEntry>> =
            HashMap::with_capacity(pack.policies.len());
        let mut reused = 0usize;
        for def in &pack.policies {
            let entry = match current.get(&def.name) {
                Some(existing)
                    if existing.source == def.source && existing.package == def.package =>
                {
                    reused += 1;
                    Arc::clone(existing)
                }
                _ => {
                    let compiled = CompiledPattern::compile(&def.pattern);
                    compiled.set_memo_bound(self.config.memo_bound);
                    Arc::new(PolicyEntry {
                        package: def.package.clone(),
                        source: def.source.clone(),
                        compiled: Arc::new(compiled),
                    })
                }
            };
            // Metrics rows exist before the set becomes visible, so a vet
            // racing the publish always finds its histogram; unchanged
            // names keep their timelines.
            self.metrics.register_policy(&def.name);
            next.insert(def.name.clone(), entry);
        }
        let installed = next.len();
        let published = self.registry.publish(next);
        // Retire rows the new set no longer names.  A vet that pinned the
        // *old* set and races this retirement finds `metrics.policy()`
        // empty and simply skips recording — never a panic.
        self.metrics
            .retain_policies(|name| published.get(name).is_some());
        PackInstall {
            version: published.version(),
            installed,
            reused,
        }
    }

    /// Lists the current policy set: its version plus every policy's
    /// name, source package, and canonical pattern text, sorted by name.
    pub fn policies(&self) -> PolicyListing {
        let set = self.registry.load();
        let mut policies: Vec<PolicyInfo> = set
            .iter()
            .map(|(name, entry)| PolicyInfo {
                name: name.clone(),
                package: entry.package.clone(),
                source: entry.source.clone(),
            })
            .collect();
        policies.sort_by(|a, b| a.name.cmp(&b.name));
        PolicyListing {
            version: set.version(),
            policies,
        }
    }

    /// The current policy-set version: 0 before anything is registered,
    /// bumped by every [`AuditEngine::install_pack`] and
    /// [`AuditEngine::register_pattern`].
    pub fn pack_version(&self) -> u64 {
        self.registry.load().version()
    }

    /// The engine's per-policy metrics registry (see [`crate::metrics`]).
    ///
    /// [`AuditEngine::metrics`] is the aggregated snapshot; this is the
    /// live registry, for callers that want a policy's
    /// [`crate::metrics::PolicyMetrics`] handle directly (benchmarks,
    /// tests).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Names of the registered patterns, sorted.
    pub fn pattern_names(&self) -> Vec<String> {
        self.registry.load().names()
    }

    /// Memo statistics of the named pattern's top-level automaton.
    pub fn pattern_memo_stats(&self, name: &str) -> Option<MemoStats> {
        self.registry
            .load()
            .get(name)
            .map(|entry| entry.compiled.memo_stats())
    }

    /// Appends one record to the store and publishes it (a one-record
    /// batch).
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn ingest(&self, record: ProvenanceRecord) -> Result<SequenceNumber, StoreError> {
        let sequences = self.ingest_batch(vec![record])?;
        Ok(*sequences.first().expect("one record in, one sequence out"))
    }

    /// Appends a whole batch under **one** write-lock acquisition and
    /// publishes **one** snapshot for it, so a burst of ingest pays for
    /// the append lock and the publication once per batch instead of once
    /// per record — and readers observe the batch atomically (all of it
    /// or none of it), never a torn prefix.
    ///
    /// Publication happens before this method returns: read-your-writes
    /// holds for the returned sequence numbers.
    ///
    /// Records appended before a failure stay appended — and are
    /// published, so the snapshot never diverges from the durable log;
    /// the error reports the first record that could not be written.
    ///
    /// # Errors
    ///
    /// Propagates the first store append failure.
    pub fn ingest_batch(
        &self,
        records: Vec<ProvenanceRecord>,
    ) -> Result<Vec<SequenceNumber>, StoreError> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        let mut sequences = Vec::with_capacity(records.len());
        let mut appended = Vec::with_capacity(records.len());
        let mut store = self.write_store();
        let mut failure = None;
        for record in records {
            // Clone for the snapshot before the append consumes the
            // record; the store-assigned sequence is patched in below, so
            // no store lookup is needed inside the write-lock window.
            let mut pending = record.clone();
            match store.append(record) {
                Ok(seq) => {
                    sequences.push(seq);
                    self.ingested.fetch_add(1, Ordering::Relaxed);
                    pending.sequence = seq;
                    appended.push(pending);
                }
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        if !appended.is_empty() {
            // Build the next snapshot off to the side and publish it while
            // the write lock is still held, so publications carry the same
            // total order as the appends they describe (monotone
            // watermarks).  Readers never wait on any of this: they keep
            // loading the previous snapshot until the single-pointer swap.
            let next = self.snapshot.load().extended(appended);
            self.snapshot.publish(next);
            self.snapshots_published.fetch_add(1, Ordering::Relaxed);
        }
        drop(store);
        match failure {
            Some(error) => Err(error),
            None => Ok(sequences),
        }
    }

    /// Records one `Busy` rejection of an ingest batch (called by the
    /// bounded [`crate::IngestQueue`]; the engine itself never rejects).
    pub(crate) fn note_busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the current ingest-queue depth gauge.
    pub(crate) fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Publishes the snapshot-lag gauge: queue batches accepted but not
    /// yet visible to snapshot readers (queued or mid-application).
    pub(crate) fn set_snapshot_lag(&self, lag: usize) {
        self.snapshot_lag.store(lag as u64, Ordering::Relaxed);
    }

    /// Flushes and syncs the underlying store.
    ///
    /// # Errors
    ///
    /// Propagates store sync failures.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.write_store().sync()
    }

    /// The currently published snapshot.
    ///
    /// Pinning it and serving several requests through
    /// [`AuditEngine::handle_at`] gives repeatable reads: all of them see
    /// the same frozen state at the same watermark, however much ingest
    /// lands in between.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.snapshot.load()
    }

    /// The published watermark: the highest sequence number visible to
    /// readers right now.  Monotone over the engine's lifetime.
    pub fn watermark(&self) -> SequenceNumber {
        self.snapshot.load().watermark()
    }

    /// Serves one request from the currently published snapshot (safe to
    /// call from many threads; acquires **no** store lock).
    pub fn handle(&self, request: &AuditRequest) -> AuditResponse {
        self.handle_with_trace(request, None)
    }

    /// [`AuditEngine::handle`] for a traced request: `trace_id`, when
    /// present, is kept as the exemplar of the latency bucket the vet
    /// lands in (see [`crate::trace`]).  `None` behaves exactly like
    /// [`AuditEngine::handle`].
    pub fn handle_with_trace(
        &self,
        request: &AuditRequest,
        trace_id: Option<u128>,
    ) -> AuditResponse {
        let snapshot = self.snapshot.load();
        self.handle_at_traced(&snapshot, request, trace_id)
    }

    /// Serves one request from an explicit snapshot — the repeatable-read
    /// entry point ([`AuditEngine::handle`] is `handle_at` on the latest
    /// published snapshot).  The response's watermark is the snapshot's.
    pub fn handle_at(&self, snapshot: &EngineSnapshot, request: &AuditRequest) -> AuditResponse {
        self.handle_at_traced(snapshot, request, None)
    }

    fn handle_at_traced(
        &self,
        snapshot: &EngineSnapshot,
        request: &AuditRequest,
        trace_id: Option<u128>,
    ) -> AuditResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // One policy-set load at entry: however many pack installs land
        // mid-flight, this request answers from — and is stamped with —
        // exactly one pack version.
        let policies = self.registry.load();
        let pack_version = policies.version();
        let response = match request {
            AuditRequest::VetValue { value, pattern } => {
                self.vet_value(snapshot, &policies, value, pattern, trace_id)
            }
            AuditRequest::AuditTrail { value } => self.audit_trail(snapshot, value, pack_version),
            AuditRequest::WhoTouched { principal } => {
                self.who_touched(snapshot, principal, pack_version)
            }
            AuditRequest::OriginOf { value } => self.origin_of(snapshot, value, pack_version),
            AuditRequest::Why { value, pattern } => self.why(snapshot, &policies, value, pattern),
            AuditRequest::Counterfactual {
                value,
                pattern,
                remove,
            } => self.counterfactual(snapshot, &policies, value, pattern, remove),
        };
        self.index_hits
            .fetch_add(response.stats.index_hits as u64, Ordering::Relaxed);
        self.memo_hits
            .fetch_add(response.stats.memo_hits as u64, Ordering::Relaxed);
        response
    }

    /// A snapshot of the engine's lifetime counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            vets_passed: self.vets_passed.load(Ordering::Relaxed),
            vets_failed: self.vets_failed.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            snapshot_lag: self.snapshot_lag.load(Ordering::Relaxed),
            watermark: self.snapshot.load().watermark(),
        }
    }

    /// Statistics of the underlying store (read lock; an operator call,
    /// not an audit query path).
    pub fn store_stats(&self) -> StoreStats {
        self.read_store().stats()
    }

    /// Whole seconds since this engine was opened.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Number of records visible to readers (answered from the published
    /// snapshot, like every query).
    pub fn record_count(&self) -> usize {
        self.snapshot.load().len()
    }

    fn vet_value(
        &self,
        snapshot: &EngineSnapshot,
        policies: &PolicySet,
        value: &piprov_core::value::Value,
        pattern: &str,
        trace_id: Option<u128>,
    ) -> AuditResponse {
        // The whole vet — pattern lookup, posting-list lookup, NFA
        // simulation — is timed into the policy's latency histogram; the
        // record itself is a handful of relaxed atomic adds (the
        // `e15_metrics` bench group keeps that overhead measured).
        let started = Instant::now();
        let watermark = snapshot.watermark();
        let pack_version = policies.version();
        let Some(entry) = policies.get(pattern) else {
            // No per-policy row to land in: counted separately.  The
            // payload spares the operator a second round trip: every
            // registered name, plus the nearest if the request looks
            // like a typo for it.
            self.metrics.note_unknown_pattern();
            let known = policies.names();
            let nearest = piprov_policy::nearest_name(pattern, known.iter().map(String::as_str));
            return AuditResponse::new(
                AuditOutcome::UnknownPattern { known, nearest },
                RequestStats::default(),
                watermark,
                pack_version,
            );
        };
        let compiled = Arc::clone(&entry.compiled);
        let policy = self.metrics.policy(pattern);
        let postings = snapshot.index().by_value(value);
        let mut stats = RequestStats {
            index_hits: postings.len(),
            ..RequestStats::default()
        };
        // The newest record carries the value's current history.
        let Some(record) = postings.last().and_then(|seq| snapshot.get(*seq)) else {
            if let Some(policy) = &policy {
                policy.record_traced(elapsed_ns(started), VetOutcomeKind::UnknownValue, trace_id);
            }
            return AuditResponse::new(AuditOutcome::UnknownValue, stats, watermark, pack_version);
        };
        let (verdict, match_stats) = compiled.matches_with_stats(&record.provenance);
        stats.memo_hits = match_stats.memo_hits;
        stats.dag_nodes_visited = match_stats.nodes_visited;
        let outcome = if verdict {
            self.vets_passed.fetch_add(1, Ordering::Relaxed);
            VetOutcomeKind::Passed
        } else {
            self.vets_failed.fetch_add(1, Ordering::Relaxed);
            VetOutcomeKind::Failed
        };
        if let Some(policy) = &policy {
            policy.record_traced(elapsed_ns(started), outcome, trace_id);
        }
        AuditResponse::new(
            AuditOutcome::Vetted {
                verdict,
                sequence: record.sequence,
            },
            stats,
            watermark,
            pack_version,
        )
    }

    fn audit_trail(
        &self,
        snapshot: &EngineSnapshot,
        value: &piprov_core::value::Value,
        pack_version: u64,
    ) -> AuditResponse {
        let watermark = snapshot.watermark();
        // One posting-list lookup serves both the existence check and the
        // index_hits accounting: the trail holds exactly the records the
        // by_value list names.
        let trail = snapshot.audit_trail(value);
        if trail.records.is_empty() {
            return AuditResponse::new(
                AuditOutcome::UnknownValue,
                RequestStats::default(),
                watermark,
                pack_version,
            );
        }
        let index_hits = trail.records.len();
        // O(1) per record: the spine lengths are cached on the interned
        // nodes; a per-request DAG walk would defeat the pay-per-new-node
        // discipline.
        let dag_nodes_visited = trail.records.iter().map(|r| r.provenance.len()).sum();
        AuditResponse::new(
            AuditOutcome::Trail(trail),
            RequestStats {
                index_hits,
                dag_nodes_visited,
                ..RequestStats::default()
            },
            watermark,
            pack_version,
        )
    }

    fn who_touched(
        &self,
        snapshot: &EngineSnapshot,
        principal: &piprov_core::name::Principal,
        pack_version: u64,
    ) -> AuditResponse {
        let watermark = snapshot.watermark();
        let records: Vec<SequenceNumber> =
            snapshot.index().by_involved_principal(principal).to_vec();
        let index_hits = records.len();
        // First-appearance order with set-based dedup: a busy relay can
        // appear in every record's history.
        let mut seen = std::collections::HashSet::new();
        let mut values = Vec::new();
        for record in snapshot.get_many(records.iter().copied()) {
            if seen.insert(record.value.clone()) {
                values.push(record.value.clone());
            }
        }
        AuditResponse::new(
            AuditOutcome::Touched { records, values },
            RequestStats {
                index_hits,
                ..RequestStats::default()
            },
            watermark,
            pack_version,
        )
    }

    fn origin_of(
        &self,
        snapshot: &EngineSnapshot,
        value: &piprov_core::value::Value,
        pack_version: u64,
    ) -> AuditResponse {
        let watermark = snapshot.watermark();
        let trail = snapshot.audit_trail(value);
        if trail.records.is_empty() {
            return AuditResponse::new(
                AuditOutcome::UnknownValue,
                RequestStats::default(),
                watermark,
                pack_version,
            );
        }
        let index_hits = trail.records.len();
        // Origin scans each record's top-level events oldest-first; charge
        // the spine events available to that scan.
        let dag_nodes_visited = trail.records.iter().map(|r| r.provenance.len()).sum();
        AuditResponse::new(
            AuditOutcome::Origin {
                principal: trail.origin(),
            },
            RequestStats {
                index_hits,
                dag_nodes_visited,
                ..RequestStats::default()
            },
            watermark,
            pack_version,
        )
    }

    /// Serves [`AuditRequest::Why`]: vets the value's newest history with
    /// the witness walk and surfaces the explaining [`WhySlice`].  The
    /// walk seeds the pattern memo with every suffix verdict it
    /// determines (see `CompiledPattern::witness`), so a why query warms
    /// the cache for subsequent vets and counterfactuals.
    fn why(
        &self,
        snapshot: &EngineSnapshot,
        policies: &PolicySet,
        value: &piprov_core::value::Value,
        pattern: &str,
    ) -> AuditResponse {
        let watermark = snapshot.watermark();
        let pack_version = policies.version();
        let Some(entry) = policies.get(pattern) else {
            self.metrics.note_unknown_pattern();
            let known = policies.names();
            let nearest = piprov_policy::nearest_name(pattern, known.iter().map(String::as_str));
            return AuditResponse::new(
                AuditOutcome::UnknownPattern { known, nearest },
                RequestStats::default(),
                watermark,
                pack_version,
            );
        };
        let compiled = Arc::clone(&entry.compiled);
        let postings = snapshot.index().by_value(value);
        let mut stats = RequestStats {
            index_hits: postings.len(),
            ..RequestStats::default()
        };
        let Some(record) = postings.last().and_then(|seq| snapshot.get(*seq)) else {
            return AuditResponse::new(AuditOutcome::UnknownValue, stats, watermark, pack_version);
        };
        let mut match_stats = MatchStats::default();
        let trail = compiled.witness(&record.provenance, &mut match_stats);
        stats.memo_hits = match_stats.memo_hits;
        stats.dag_nodes_visited = match_stats.nodes_visited;
        let slice = WhySlice::from_trail(trail, record.sequence);
        AuditResponse::new(AuditOutcome::Why(slice), stats, watermark, pack_version)
    }

    /// Serves [`AuditRequest::Counterfactual`]: vets the newest history
    /// as-is, re-vets it with the filtered events removed (via
    /// [`filtered_view`] — untouched suffixes keep their interned nodes,
    /// so their verdicts answer from the memo), and reports both verdicts
    /// plus the delta slice.  The filtered re-vet's cache hits are
    /// surfaced as [`RequestStats::memo_reused`].
    fn counterfactual(
        &self,
        snapshot: &EngineSnapshot,
        policies: &PolicySet,
        value: &piprov_core::value::Value,
        pattern: &str,
        remove: &EventFilter,
    ) -> AuditResponse {
        let watermark = snapshot.watermark();
        let pack_version = policies.version();
        let Some(entry) = policies.get(pattern) else {
            self.metrics.note_unknown_pattern();
            let known = policies.names();
            let nearest = piprov_policy::nearest_name(pattern, known.iter().map(String::as_str));
            return AuditResponse::new(
                AuditOutcome::UnknownPattern { known, nearest },
                RequestStats::default(),
                watermark,
                pack_version,
            );
        };
        let compiled = Arc::clone(&entry.compiled);
        let policy = self.metrics.policy(pattern);
        let postings = snapshot.index().by_value(value);
        let mut stats = RequestStats {
            index_hits: postings.len(),
            ..RequestStats::default()
        };
        let Some(record) = postings.last().and_then(|seq| snapshot.get(*seq)) else {
            return AuditResponse::new(AuditOutcome::UnknownValue, stats, watermark, pack_version);
        };
        let (original, original_stats) = compiled.matches_with_stats(&record.provenance);
        let view = filtered_view(&record.provenance, remove);
        let (counterfactual, cf_stats) = compiled.matches_with_stats(&view.provenance);
        stats.memo_hits = original_stats.memo_hits + cf_stats.memo_hits;
        stats.dag_nodes_visited = original_stats.nodes_visited + cf_stats.nodes_visited;
        stats.memo_reused = cf_stats.memo_hits;
        let verdict = CounterfactualVerdict {
            original,
            counterfactual,
            sequence: record.sequence,
            removed: view.removed,
        };
        if let Some(policy) = &policy {
            policy.record_counterfactual(verdict.flipped());
        }
        AuditResponse::new(
            AuditOutcome::Counterfactual(verdict),
            stats,
            watermark,
            pack_version,
        )
    }

    fn read_store(&self) -> RwLockReadGuard<'_, ProvenanceStore> {
        match self.store.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_store(&self) -> RwLockWriteGuard<'_, ProvenanceStore> {
        match self.store.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Nanoseconds elapsed since `started`, saturated into `u64` (584 years —
/// anything longer belongs in the overflow bucket anyway).
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;
    use piprov_patterns::GroupExpr;
    use piprov_store::Operation;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-audit-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn value(name: &str) -> Value {
        Value::Channel(Channel::new(name))
    }

    /// Replays the paper's auditing scenario into an engine: a sends v,
    /// the faulty s forwards it to c.
    fn seeded_engine(dir: &PathBuf) -> AuditEngine {
        let engine = AuditEngine::open(dir).unwrap();
        let empty = Provenance::empty();
        let a = Principal::new("a");
        let s = Principal::new("s");
        let c = Principal::new("c");
        let k1 = empty.prepend(Event::output(a.clone(), empty.clone()));
        let k2 = k1.prepend(Event::input(s.clone(), empty.clone()));
        let k3 = k2.prepend(Event::output(s.clone(), empty.clone()));
        let k4 = k3.prepend(Event::input(c.clone(), empty.clone()));
        for (t, who, op, chan, k) in [
            (1u64, "a", Operation::Send, "m", k1),
            (2, "s", Operation::Receive, "m", k2),
            (3, "s", Operation::Send, "nprime", k3),
            (4, "c", Operation::Receive, "nprime", k4),
        ] {
            engine
                .ingest(ProvenanceRecord::new(t, who, op, chan, value("v"), k))
                .unwrap();
        }
        engine
    }

    #[test]
    fn vet_value_answers_from_the_newest_record() {
        let dir = temp_dir("vet");
        let engine = seeded_engine(&dir);
        engine.register_pattern("origin-a", Pattern::originated_at(GroupExpr::single("a")));
        engine.register_pattern(
            "only-trusted",
            Pattern::only_touched_by(GroupExpr::any_of(["a", "b"])),
        );
        let pass = engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "origin-a".into(),
        });
        assert!(
            matches!(
                pass.outcome,
                AuditOutcome::Vetted {
                    verdict: true,
                    sequence: 4
                }
            ),
            "{:?}",
            pass.outcome
        );
        assert_eq!(pass.stats.index_hits, 4, "four postings for v");
        assert!(pass.stats.dag_nodes_visited > 0, "cold vet simulates");
        let fail = engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "only-trusted".into(),
        });
        assert!(matches!(
            fail.outcome,
            AuditOutcome::Vetted { verdict: false, .. }
        ));
        // Re-vetting the same history is answered from the memo.
        let warm = engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "origin-a".into(),
        });
        assert_eq!(warm.stats.dag_nodes_visited, 0);
        assert!(warm.stats.memo_hits >= 1);
        let stats = engine.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.vets_passed, 2);
        assert_eq!(stats.vets_failed, 1);
        assert!(stats.memo_hits >= 1);
        assert!(stats.to_string().contains("3 requests"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_value_and_pattern_are_structured_errors() {
        let dir = temp_dir("unknown");
        let engine = seeded_engine(&dir);
        engine.register_pattern("any", Pattern::Any);
        let no_pattern = engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "nope".into(),
        });
        let AuditOutcome::UnknownPattern { known, nearest } = &no_pattern.outcome else {
            panic!("expected unknown pattern, got {:?}", no_pattern.outcome);
        };
        assert_eq!(known, &vec!["any".to_string()]);
        assert_eq!(nearest, &None, "\"nope\" is no plausible typo for \"any\"");
        let no_value = engine.handle(&AuditRequest::VetValue {
            value: value("ghost"),
            pattern: "any".into(),
        });
        assert_eq!(no_value.outcome, AuditOutcome::UnknownValue);
        assert_eq!(
            engine
                .handle(&AuditRequest::AuditTrail {
                    value: value("ghost")
                })
                .outcome,
            AuditOutcome::UnknownValue
        );
        assert_eq!(
            engine
                .handle(&AuditRequest::OriginOf {
                    value: value("ghost")
                })
                .outcome,
            AuditOutcome::UnknownValue
        );
        assert_eq!(engine.pattern_names(), vec!["any".to_string()]);
        assert!(engine.pattern_memo_stats("nope").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vet_hot_path_populates_the_policy_histograms() {
        let dir = temp_dir("metrics");
        let engine = seeded_engine(&dir);
        engine.register_pattern("origin-a", Pattern::originated_at(GroupExpr::single("a")));
        engine.register_pattern(
            "only-trusted",
            Pattern::only_touched_by(GroupExpr::any_of(["a", "b"])),
        );
        for _ in 0..3 {
            engine.handle(&AuditRequest::VetValue {
                value: value("v"),
                pattern: "origin-a".into(),
            });
        }
        engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "only-trusted".into(),
        });
        engine.handle(&AuditRequest::VetValue {
            value: value("ghost"),
            pattern: "origin-a".into(),
        });
        engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "unregistered".into(),
        });
        let metrics = engine.metrics();
        assert_eq!(metrics.vets_unknown_pattern, 1);
        assert_eq!(metrics.policies.len(), 2);
        assert_eq!(
            metrics
                .policies
                .iter()
                .map(|p| p.policy.as_str())
                .collect::<Vec<_>>(),
            vec!["only-trusted", "origin-a"],
            "policies are sorted by name"
        );
        let origin_a = &metrics.policies[1];
        assert_eq!(origin_a.vets_passed, 3);
        assert_eq!(origin_a.vets_unknown_value, 1);
        assert_eq!(origin_a.latency.count, 4, "unknown values are timed too");
        assert!(origin_a.latency.sum_ns > 0);
        assert_eq!(
            origin_a.latency.counts.iter().sum::<u64>() + origin_a.latency.overflow,
            origin_a.latency.count
        );
        assert_eq!(
            origin_a.memo,
            engine.pattern_memo_stats("origin-a").unwrap()
        );
        let only_trusted = &metrics.policies[0];
        assert_eq!(only_trusted.vets_failed, 1);
        assert_eq!(only_trusted.latency.count, 1);
        // The typed snapshot and the engine's counters agree.
        assert_eq!(metrics.engine, engine.stats());
        assert_eq!(metrics.store, engine.store_stats());
        // And the exposition renders it all, validly.
        let text = metrics.exposition();
        crate::metrics::validate_exposition(&text).unwrap();
        assert!(text.contains("piprov_vet_latency_seconds_bucket{policy=\"origin-a\","));
        assert!(text.contains("piprov_policy_vets_failed_total{policy=\"only-trusted\"} 1"));
        assert!(text.contains("piprov_vets_unknown_pattern_total 1"));
        // Re-registering a policy keeps its metric timeline.
        engine.register_pattern("origin-a", Pattern::originated_at(GroupExpr::single("a")));
        assert_eq!(engine.metrics().policies[1].vets_passed, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trail_touched_and_origin_answer_via_the_index() {
        let dir = temp_dir("queries");
        let engine = seeded_engine(&dir);
        let trail = engine.handle(&AuditRequest::AuditTrail { value: value("v") });
        let AuditOutcome::Trail(trail_data) = &trail.outcome else {
            panic!("expected a trail, got {:?}", trail.outcome);
        };
        assert_eq!(trail_data.records.len(), 4);
        assert!(trail_data.involves(&Principal::new("s")));
        assert_eq!(trail.stats.index_hits, 4);
        assert!(trail.stats.dag_nodes_visited > 0);

        let touched = engine.handle(&AuditRequest::WhoTouched {
            principal: Principal::new("a"),
        });
        let AuditOutcome::Touched { records, values } = &touched.outcome else {
            panic!("expected touched, got {:?}", touched.outcome);
        };
        assert_eq!(records, &vec![1, 2, 3, 4], "a is in every history");
        assert_eq!(values, &vec![value("v")]);

        let origin = engine.handle(&AuditRequest::OriginOf { value: value("v") });
        assert_eq!(
            origin.outcome,
            AuditOutcome::Origin {
                principal: Some(Principal::new("a"))
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_memo_stays_under_its_configured_bound_on_a_long_workload() {
        let dir = temp_dir("bound");
        let store = ProvenanceStore::open(&dir).unwrap();
        let engine = AuditEngine::with_config(store, AuditConfig { memo_bound: 32 });
        engine.register_pattern(
            "sends-only",
            Pattern::send(GroupExpr::all(), Pattern::Any).star(),
        );
        // A long-lived service: many distinct values with distinct
        // histories, each ingested then vetted.
        for i in 0..500u64 {
            let who = format!("p{}", i % 17);
            let mut k = Provenance::empty();
            for j in 0..=(i % 11) {
                k = k.prepend(Event::output(
                    Principal::new(format!("{}-{}", who, j)),
                    Provenance::empty(),
                ));
            }
            engine
                .ingest(ProvenanceRecord::new(
                    i,
                    who.as_str(),
                    Operation::Send,
                    "m",
                    value(&format!("item{}", i)),
                    k,
                ))
                .unwrap();
            let response = engine.handle(&AuditRequest::VetValue {
                value: value(&format!("item{}", i)),
                pattern: "sends-only".into(),
            });
            assert!(matches!(
                response.outcome,
                AuditOutcome::Vetted { verdict: true, .. }
            ));
            let memo = engine.pattern_memo_stats("sends-only").unwrap();
            assert!(
                memo.entries <= 32,
                "memo exceeded its bound: {} > 32",
                memo.entries
            );
        }
        let memo = engine.pattern_memo_stats("sends-only").unwrap();
        assert_eq!(memo.bound, 32);
        assert!(memo.epochs > 0, "500 distinct histories forced eviction");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn responses_carry_the_published_watermark_and_pinned_snapshots_freeze() {
        let dir = temp_dir("watermark");
        let engine = seeded_engine(&dir);
        engine.register_pattern("any", Pattern::Any);
        assert_eq!(engine.watermark(), 4);
        let response = engine.handle(&AuditRequest::AuditTrail { value: value("v") });
        assert_eq!(response.watermark, 4);
        let AuditOutcome::Trail(trail) = &response.outcome else {
            panic!("expected trail");
        };
        assert!(trail
            .records
            .iter()
            .all(|r| r.sequence <= response.watermark));

        // Pin the snapshot, then ingest one more record for v.
        let pinned = engine.snapshot();
        let k = Provenance::single(Event::output(Principal::new("d"), Provenance::empty()));
        engine
            .ingest(ProvenanceRecord::new(
                9,
                "d",
                Operation::Send,
                "m",
                value("v"),
                k,
            ))
            .unwrap();
        assert_eq!(
            engine.watermark(),
            5,
            "read-your-writes: publish precedes return"
        );

        // The pinned snapshot is repeatable: it still answers at watermark
        // 4, with 4 records — however much ingest landed since.
        let frozen = engine.handle_at(&pinned, &AuditRequest::AuditTrail { value: value("v") });
        assert_eq!(frozen.watermark, 4);
        let AuditOutcome::Trail(trail) = &frozen.outcome else {
            panic!("expected trail");
        };
        assert_eq!(trail.records.len(), 4);

        // A fresh handle sees the new state.
        let fresh = engine.handle(&AuditRequest::AuditTrail { value: value("v") });
        assert_eq!(fresh.watermark, 5);
        let AuditOutcome::Trail(trail) = &fresh.outcome else {
            panic!("expected trail");
        };
        assert_eq!(trail.records.len(), 5);

        // Unknown values and patterns still name the watermark they were
        // answered at.
        let unknown = engine.handle(&AuditRequest::OriginOf {
            value: value("ghost"),
        });
        assert_eq!(unknown.outcome, AuditOutcome::UnknownValue);
        assert_eq!(unknown.watermark, 5);

        let stats = engine.stats();
        assert_eq!(stats.watermark, 5);
        assert_eq!(
            stats.snapshots_published, 5,
            "one publication per ingested batch (5 single-record batches)"
        );
        assert_eq!(stats.snapshot_lag, 0, "no queue attached, no lag");
        assert!(stats.to_string().contains("watermark 5"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consecutive_snapshots_share_chunks_and_index_buckets() {
        use std::sync::Arc as StdArc;
        let dir = temp_dir("sharing");
        let engine = seeded_engine(&dir);
        let before = engine.snapshot();
        let k = Provenance::single(Event::output(Principal::new("z"), Provenance::empty()));
        engine
            .ingest_batch(vec![ProvenanceRecord::new(
                10,
                "z",
                Operation::Send,
                "m",
                value("fresh"),
                k,
            )])
            .unwrap();
        let after = engine.snapshot();
        assert_eq!(after.chunk_count(), before.chunk_count() + 1);
        // The untouched value's bucket is the same allocation in both
        // snapshots: publication extended, it did not rebuild.
        assert!(StdArc::ptr_eq(
            before.index().value_bucket(&value("v")).unwrap(),
            after.index().value_bucket(&value("v")).unwrap()
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_republishes_the_stored_records() {
        let dir = temp_dir("recover-snapshot");
        {
            let engine = seeded_engine(&dir);
            engine.sync().unwrap();
        }
        let engine = AuditEngine::open(&dir).unwrap();
        assert_eq!(engine.watermark(), 4);
        assert_eq!(engine.record_count(), 4);
        let trail = engine.handle(&AuditRequest::AuditTrail { value: value("v") });
        assert_eq!(trail.watermark, 4);
        assert_eq!(
            engine.stats().snapshots_published,
            0,
            "the recovery snapshot is not a publication"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_auditors_agree_while_ingest_streams() {
        use std::sync::Arc;
        use std::thread;
        let dir = temp_dir("concurrent");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern(
            "origin-supplier",
            Pattern::originated_at(GroupExpr::any_of(["s0", "s1", "s2", "s3"])),
        );
        // Seed one value so auditors always have something to ask about.
        let k0 = Provenance::single(Event::output(Principal::new("s0"), Provenance::empty()));
        engine
            .ingest(ProvenanceRecord::new(
                0,
                "s0",
                Operation::Send,
                "m",
                value("item0"),
                k0,
            ))
            .unwrap();
        let total = 200u64;
        let writer = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                for i in 1..total {
                    let who = format!("s{}", i % 4);
                    let k = Provenance::single(Event::output(
                        Principal::new(who.as_str()),
                        Provenance::empty(),
                    ))
                    .prepend(Event::input(Principal::new("relay"), Provenance::empty()));
                    engine
                        .ingest(ProvenanceRecord::new(
                            i,
                            who.as_str(),
                            Operation::Send,
                            "m",
                            value(&format!("item{}", i)),
                            k,
                        ))
                        .unwrap();
                }
            })
        };
        let auditors: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    let mut vets = 0u64;
                    for i in 0..total {
                        let target = value(&format!("item{}", (i + t) % total));
                        let response = engine.handle(&AuditRequest::VetValue {
                            value: target.clone(),
                            pattern: "origin-supplier".into(),
                        });
                        match response.outcome {
                            // Every ingested item originates at a supplier.
                            AuditOutcome::Vetted { verdict, .. } => {
                                assert!(verdict, "vet of {} failed", target);
                                vets += 1;
                            }
                            // The writer may simply not have got there yet.
                            AuditOutcome::UnknownValue => {}
                            other => panic!("unexpected outcome {:?}", other),
                        }
                        let touched = engine.handle(&AuditRequest::WhoTouched {
                            principal: Principal::new("s0"),
                        });
                        assert!(matches!(touched.outcome, AuditOutcome::Touched { .. }));
                    }
                    vets
                })
            })
            .collect();
        writer.join().unwrap();
        let vetted: u64 = auditors.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(vetted > 0, "auditors vetted at least the seeded item");
        // After the writer finishes, every value vets true.
        for i in 0..total {
            let response = engine.handle(&AuditRequest::VetValue {
                value: value(&format!("item{}", i)),
                pattern: "origin-supplier".into(),
            });
            assert!(matches!(
                response.outcome,
                AuditOutcome::Vetted { verdict: true, .. }
            ));
        }
        assert_eq!(engine.record_count(), total as usize);
        assert_eq!(engine.stats().ingested, total);
        engine.sync().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    use piprov_policy::{PackFile, PackSource};

    /// Compiles a one-file pack rooted at `rules` with file `gate.ppol`,
    /// so every policy lands in package `rules::gate`.
    fn compile_pack(text: &str) -> PolicyPack {
        PolicyPack::compile(&PackSource::new(
            "rules",
            vec![PackFile::new("gate.ppol", text)],
        ))
        .unwrap()
    }

    #[test]
    fn unknown_pattern_payload_suggests_the_nearest_name() {
        let dir = temp_dir("nearest");
        let engine = seeded_engine(&dir);
        engine.register_pattern("vendor-only", Pattern::Any);
        engine.register_pattern("origin-a", Pattern::originated_at(GroupExpr::single("a")));
        let response = engine.handle(&AuditRequest::VetValue {
            value: value("v"),
            pattern: "vendor-onyl".into(),
        });
        let AuditOutcome::UnknownPattern { known, nearest } = &response.outcome else {
            panic!("expected unknown pattern, got {:?}", response.outcome);
        };
        assert_eq!(
            known,
            &vec!["origin-a".to_string(), "vendor-only".to_string()],
            "known names are sorted"
        );
        assert_eq!(nearest, &Some("vendor-only".to_string()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn install_pack_swaps_atomically_and_carries_memo_over() {
        let dir = temp_dir("pack");
        let engine = seeded_engine(&dir);
        assert_eq!(engine.pack_version(), 0);

        let v1 = compile_pack("policy origin_a = a!Any; Any\npolicy tail = Any; c?Any\n");
        let install = engine.install_pack(&v1);
        assert_eq!(install.version, 1);
        assert_eq!(install.installed, 2);
        assert_eq!(install.reused, 0);
        assert_eq!(engine.pack_version(), 1);
        assert_eq!(
            engine.pattern_names(),
            vec![
                "rules::gate::origin_a".to_string(),
                "rules::gate::tail".to_string()
            ]
        );
        let listing = engine.policies();
        assert_eq!(listing.version, 1);
        assert_eq!(listing.policies.len(), 2);
        assert_eq!(listing.policies[0].name, "rules::gate::origin_a");
        assert_eq!(listing.policies[0].package, "rules::gate");
        assert_eq!(listing.policies[0].source, "a!Any; Any");

        // Warm the memo, then reinstall the identical pack: the compiled
        // automaton (memo and all) and the metric timeline carry over.
        let vet = |engine: &AuditEngine| {
            engine.handle(&AuditRequest::VetValue {
                value: value("v"),
                pattern: "rules::gate::origin_a".into(),
            })
        };
        let cold = vet(&engine);
        assert!(matches!(cold.outcome, AuditOutcome::Vetted { .. }));
        assert!(cold.stats.dag_nodes_visited > 0, "cold vet simulates");
        let again = engine.install_pack(&compile_pack(
            "policy origin_a = a!Any; Any\npolicy tail = Any; c?Any\n",
        ));
        assert_eq!(again.version, 2);
        assert_eq!(again.reused, 2, "unchanged policies are carried over");
        let warm = vet(&engine);
        assert_eq!(warm.pack_version, 2);
        assert_eq!(warm.stats.dag_nodes_visited, 0, "memo survived the reload");
        assert!(warm.stats.memo_hits >= 1);
        let origin_row = engine
            .metrics()
            .policies
            .into_iter()
            .find(|p| p.policy == "rules::gate::origin_a")
            .expect("metrics row survives reinstall");
        assert!(
            origin_row.latency.count >= 2,
            "the metric timeline carried over the reload"
        );

        // A changed body recompiles; a dropped policy disappears, metric
        // row and all.
        let v2 = compile_pack("policy origin_a = eps | (a!Any; Any)\npolicy fresh = Any\n");
        let third = engine.install_pack(&v2);
        assert_eq!(third.version, 3);
        assert_eq!(third.installed, 2);
        assert_eq!(third.reused, 0, "changed source compiles anew");
        assert_eq!(
            engine.pattern_names(),
            vec![
                "rules::gate::fresh".to_string(),
                "rules::gate::origin_a".to_string()
            ]
        );
        assert!(engine.pattern_memo_stats("rules::gate::tail").is_none());
        assert!(
            engine
                .metrics_registry()
                .policy("rules::gate::tail")
                .is_none(),
            "dropped policies retire their metric rows"
        );

        // All-or-nothing lives at compile time: a pack with any error
        // never reaches install_pack, and the engine is untouched.
        let broken = PackSource::new(
            "rules",
            vec![PackFile::new("gate.ppol", "policy broken = (((\n")],
        );
        assert!(PolicyPack::compile(&broken).is_err());
        assert_eq!(engine.pack_version(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hot_reload_never_drops_a_vet_mid_swap() {
        use std::sync::atomic::AtomicBool;
        use std::thread;
        let dir = temp_dir("reload");
        let engine = Arc::new(seeded_engine(&dir));
        let packs = [
            compile_pack("policy gate = a!Any; Any\n"),
            compile_pack("policy gate = (a!Any; Any) | eps\npolicy extra = Any\n"),
        ];
        engine.install_pack(&packs[0]);
        let done = Arc::new(AtomicBool::new(false));

        let writer = {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let packs = packs.clone();
            thread::spawn(move || {
                for i in 0..60usize {
                    engine.install_pack(&packs[i % 2]);
                }
                done.store(true, Ordering::Release);
            })
        };
        let auditors: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut last_version = 0u64;
                    let mut vets = 0u64;
                    // At least 50 vets even if the writer finishes first,
                    // so the assertions below always exercise real traffic.
                    while vets < 50 || !done.load(Ordering::Acquire) {
                        let response = engine.handle(&AuditRequest::VetValue {
                            value: value("v"),
                            pattern: "rules::gate::gate".into(),
                        });
                        // `gate` exists in every installed pack: a vet can
                        // never land in the gap of a swap, because there
                        // is no gap — one set answers the whole request.
                        assert!(
                            matches!(response.outcome, AuditOutcome::Vetted { .. }),
                            "vet fell through mid-swap: {:?}",
                            response.outcome
                        );
                        assert!(
                            response.pack_version >= last_version,
                            "pack versions observed by one thread are monotone"
                        );
                        assert!(response.pack_version >= 1);
                        last_version = response.pack_version;
                        vets += 1;
                    }
                    vets
                })
            })
            .collect();
        writer.join().unwrap();
        let vets: u64 = auditors.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(vets > 0);
        assert_eq!(engine.metrics().vets_unknown_pattern, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
