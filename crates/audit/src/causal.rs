//! Causal queries over the interned provenance DAG: why-provenance
//! slices and counterfactual audits.
//!
//! The engine's vet plane answers *whether* a value's history satisfies a
//! policy; this module answers *why* and *what if*, following the
//! causality reading of provenance (Cheney's *Causality and the Semantics
//! of Provenance*): provenance is dependency information, so a verdict
//! can be explained by the events it depends on and probed by removing
//! them.
//!
//! **Why-provenance slices.**  The NFA subset simulation tracks every
//! candidate trail at once, so a single walk yields an exact explanation
//! (see `CompiledPattern::witness` in `piprov-patterns`): for a Passed
//! verdict, one accepting trail's events — the [`WhySlice`] — each tagged
//! with the interned DAG node (`ProvId`) of the suffix it heads; for a
//! Failed verdict, the blocking frontier — the earliest event at which
//! every candidate trail dies, or the end of a history that is simply too
//! short.
//!
//! **Counterfactual audits.**  [`EventFilter`] names a set of spine
//! events to remove — by acting principal, by event kind, or by the
//! channel's own history (the paper's δ(k) discipline records a channel's
//! *provenance* on each event, not its name, so "remove channel c's
//! events" is grounded in who built the channel).  [`filtered_view`]
//! produces the filtered history *without materializing a copy of the
//! DAG*: the spine suffix strictly older than the deepest removed event
//! is kept as the very same interned nodes — so every NFA memo verdict
//! for it remains valid and is reused — and only the kept events above it
//! are re-interned (one hash-cons lookup each).  The re-vet's memo reuse
//! is surfaced as `RequestStats::memo_reused`.

use piprov_core::name::Principal;
use piprov_core::provenance::{Direction, Event, Provenance};
use piprov_patterns::{WitnessStep, WitnessTrail};
use piprov_store::SequenceNumber;
use std::fmt;

/// Names the spine events a counterfactual removes.
///
/// Filters apply to the *top-level* spine events of the vetted history;
/// channel provenances ride along unchanged inside kept events (they are
/// the channel's own history, not the value's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventFilter {
    /// Remove every event performed by this principal.
    Principal(Principal),
    /// Remove every event of this kind (all outputs, or all inputs).
    Kind(Direction),
    /// Remove every event exchanged on a channel whose own recorded
    /// history involves this principal.  Events carry the channel's
    /// provenance rather than its name (the paper's δ(k) discipline), so
    /// this is how "remove channel c's events" is grounded: by who built
    /// the channel.
    ChannelVia(Principal),
}

impl EventFilter {
    /// Whether this filter removes `event` from a history.
    pub fn removes(&self, event: &Event) -> bool {
        match self {
            EventFilter::Principal(principal) => event.principal == *principal,
            EventFilter::Kind(direction) => event.direction == *direction,
            EventFilter::ChannelVia(principal) => event
                .channel_provenance
                .principals_involved()
                .contains(principal),
        }
    }
}

impl fmt::Display for EventFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventFilter::Principal(principal) => write!(f, "principal={}", principal),
            EventFilter::Kind(Direction::Output) => write!(f, "kind=output"),
            EventFilter::Kind(Direction::Input) => write!(f, "kind=input"),
            EventFilter::ChannelVia(principal) => write!(f, "channel-via={}", principal),
        }
    }
}

/// One event of a witness slice, tagged with the interned DAG node id
/// (`ProvId::as_u32`) of the spine suffix it heads — the pointer back
/// into the hash-consed DAG an operator can correlate across slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyEvent {
    /// Interned id of the suffix whose head is `event` (`κ#node`).
    pub node: u32,
    /// The event itself.
    pub event: Event,
}

impl fmt::Display for WhyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "κ#{} {}", self.node, self.event)
    }
}

/// The witness set of events explaining one vet verdict.
///
/// For `verdict == true`: `events` is an accepting trail (the full spine
/// the subset walk consumed, most recent first) and `blocked` is `None`.
/// For `verdict == false`: either `blocked` indexes the event in `events`
/// at which every candidate trail died (the blocking frontier), or
/// `blocked` is `None` and the whole history was consumed without
/// reaching acceptance — the history ends too early for the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhySlice {
    /// The verdict being explained.
    pub verdict: bool,
    /// The record whose provenance was vetted (the newest mentioning the
    /// value).
    pub sequence: SequenceNumber,
    /// Witness events, most recent first.
    pub events: Vec<WhyEvent>,
    /// Index into `events` of the blocking-frontier event, when the
    /// verdict failed mid-walk.
    pub blocked: Option<u32>,
}

fn why_event(step: WitnessStep) -> WhyEvent {
    WhyEvent {
        node: step.node.as_u32(),
        event: step.event,
    }
}

impl WhySlice {
    /// Builds the slice from a witness walk's trail (see
    /// `CompiledPattern::witness` in `piprov-patterns`).
    pub fn from_trail(trail: WitnessTrail, sequence: SequenceNumber) -> Self {
        match trail {
            WitnessTrail::Accepted { steps } => WhySlice {
                verdict: true,
                sequence,
                events: steps.into_iter().map(why_event).collect(),
                blocked: None,
            },
            WitnessTrail::Blocked { consumed, blocked } => {
                let mut events: Vec<WhyEvent> = consumed.into_iter().map(why_event).collect();
                let index = events.len() as u32;
                events.push(why_event(blocked));
                WhySlice {
                    verdict: false,
                    sequence,
                    events,
                    blocked: Some(index),
                }
            }
            WitnessTrail::Exhausted { consumed } => WhySlice {
                verdict: false,
                sequence,
                events: consumed.into_iter().map(why_event).collect(),
                blocked: None,
            },
        }
    }
}

impl fmt::Display for WhySlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "why: verdict={} sequence={} events={}",
            if self.verdict { "pass" } else { "fail" },
            self.sequence,
            self.events.len()
        )?;
        for (index, event) in self.events.iter().enumerate() {
            write!(f, "  {}", event)?;
            if self.blocked == Some(index as u32) {
                write!(f, "   <- every candidate trail dies here")?;
            }
            writeln!(f)?;
        }
        if !self.verdict && self.blocked.is_none() {
            writeln!(f, "  (history exhausted before an accepting state)")?;
        }
        Ok(())
    }
}

/// Both verdicts of a counterfactual audit plus the delta slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterfactualVerdict {
    /// Verdict of the unmodified history.
    pub original: bool,
    /// Verdict of the filtered history.
    pub counterfactual: bool,
    /// The record whose provenance was (re-)vetted.
    pub sequence: SequenceNumber,
    /// The delta slice: the spine events the filter removed, most recent
    /// first, each tagged with its original DAG node id.
    pub removed: Vec<WhyEvent>,
}

impl CounterfactualVerdict {
    /// Whether removing the events changed the verdict — the filtered
    /// events were *causal* for the original answer.
    pub fn flipped(&self) -> bool {
        self.original != self.counterfactual
    }
}

impl fmt::Display for CounterfactualVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = |v: bool| if v { "pass" } else { "fail" };
        write!(
            f,
            "counterfactual: {} -> {} ({} events removed)",
            word(self.original),
            word(self.counterfactual),
            self.removed.len()
        )
    }
}

/// A filtered view of one history: the rebuilt spine plus the delta.
#[derive(Debug, Clone)]
pub struct FilteredView {
    /// The filtered history.  When nothing was removed this is the *same*
    /// interned handle as the input (id-equal), so a re-vet is answered
    /// entirely from the memo.
    pub provenance: Provenance,
    /// The removed events, most recent first, tagged with their original
    /// DAG node ids.
    pub removed: Vec<WhyEvent>,
}

/// Applies `filter` to the spine of `provenance` without materializing a
/// DAG copy.
///
/// The walk finds the deepest (oldest) removed event; the spine suffix
/// strictly older than it is kept as-is — the identical interned nodes,
/// which is what lets the NFA memo answer for that whole subgraph — and
/// only the kept events above it are re-interned, one hash-cons lookup
/// per event.  If the filter removes nothing, the input handle is
/// returned unchanged.
pub fn filtered_view(provenance: &Provenance, filter: &EventFilter) -> FilteredView {
    // One pass down the spine: remember each suffix handle and which
    // heads the filter removes.
    let mut suffixes: Vec<Provenance> = Vec::with_capacity(provenance.len());
    let mut cursor = provenance.clone();
    while !cursor.is_empty() {
        suffixes.push(cursor.clone());
        cursor = cursor.tail().expect("non-empty provenance").clone();
    }
    let mut removed: Vec<WhyEvent> = Vec::new();
    let mut deepest: Option<usize> = None;
    for (index, suffix) in suffixes.iter().enumerate() {
        let event = suffix.head().expect("suffix is non-empty");
        if filter.removes(event) {
            removed.push(WhyEvent {
                node: suffix.id().as_u32(),
                event: event.clone(),
            });
            deepest = Some(index);
        }
    }
    let Some(deepest) = deepest else {
        return FilteredView {
            provenance: provenance.clone(),
            removed,
        };
    };
    // Everything strictly older than the deepest removed event is shared
    // verbatim; re-prepend the kept newer events oldest-first.
    let mut rebuilt = suffixes[deepest]
        .tail()
        .expect("suffix is non-empty")
        .clone();
    for suffix in suffixes[..deepest].iter().rev() {
        let event = suffix.head().expect("suffix is non-empty");
        if !filter.removes(event) {
            rebuilt = rebuilt.prepend(event.clone());
        }
    }
    FilteredView {
        provenance: rebuilt,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(p: &str) -> Event {
        Event::output(Principal::new(p), Provenance::empty())
    }
    fn inp(p: &str) -> Event {
        Event::input(Principal::new(p), Provenance::empty())
    }

    #[test]
    fn empty_filter_returns_the_identical_handle() {
        let k = Provenance::from_events(vec![out("a"), inp("b"), out("c")]);
        let view = filtered_view(&k, &EventFilter::Principal(Principal::new("nobody")));
        assert_eq!(view.provenance.id(), k.id());
        assert!(view.removed.is_empty());
    }

    #[test]
    fn filtering_matches_rebuilding_from_filtered_events() {
        let k = Provenance::from_events(vec![out("a"), inp("b"), out("a"), inp("c")]);
        for filter in [
            EventFilter::Principal(Principal::new("a")),
            EventFilter::Principal(Principal::new("b")),
            EventFilter::Kind(Direction::Output),
            EventFilter::Kind(Direction::Input),
        ] {
            let view = filtered_view(&k, &filter);
            let oracle =
                Provenance::from_events(k.to_vec().into_iter().filter(|e| !filter.removes(e)));
            assert_eq!(
                view.provenance.id(),
                oracle.id(),
                "filtered view diverges for {}",
                filter
            );
            let removed = k.to_vec().into_iter().filter(|e| filter.removes(e)).count();
            assert_eq!(view.removed.len(), removed);
        }
    }

    #[test]
    fn untouched_suffix_keeps_its_interned_nodes() {
        // Remove only the newest event: every older suffix must keep its id.
        let k = Provenance::from_events(vec![out("x"), inp("b"), out("a")]);
        let view = filtered_view(&k, &EventFilter::Principal(Principal::new("x")));
        assert_eq!(
            view.provenance.id(),
            k.tail().unwrap().id(),
            "tail after removing the head must be the shared suffix"
        );
        assert_eq!(view.removed.len(), 1);
        assert_eq!(view.removed[0].node, k.id().as_u32());
    }

    #[test]
    fn channel_via_is_grounded_in_the_channel_history() {
        let via_m = Event::input(Principal::new("b"), Provenance::single(out("m")));
        let plain = out("a");
        let filter = EventFilter::ChannelVia(Principal::new("m"));
        assert!(filter.removes(&via_m));
        assert!(!filter.removes(&plain));
    }
}
