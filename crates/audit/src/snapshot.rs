//! MVCC snapshots: the immutable state an audit query reads.
//!
//! An [`EngineSnapshot`] is a frozen, internally consistent view of the
//! engine's record log at one **watermark** (the highest sequence number
//! it contains).  The ingest path builds the next snapshot *off to the
//! side* — appending one immutable record chunk and extending a
//! structurally shared [`SharedStoreIndex`] — and publishes it with a
//! single `Arc` swap once the whole batch is durable.  Auditors therefore
//! never observe a half-applied batch: every response is explained by
//! exactly one published watermark.
//!
//! Two sharing disciplines keep publication cheap:
//!
//! * **records** are held as a vector of `Arc`'d chunks (one per published
//!   batch, merged from recovery); extending a snapshot clones only the
//!   chunk *pointers* and appends one new chunk — no record is ever
//!   re-copied after it is published;
//! * **indexes** use [`SharedStoreIndex::extended`], which shares every
//!   untouched posting-list bucket with the predecessor snapshot.
//!
//! Within a chunk, sequence numbers are contiguous, so lookup is a binary
//! search over chunk start sequences plus an offset — `O(log batches)`.

use piprov_store::{AuditTrail, ProvenanceRecord, SequenceNumber, SharedStoreIndex};
use std::sync::{Arc, RwLock};

/// One immutable run of records with contiguous sequence numbers.
#[derive(Debug, Clone)]
struct RecordChunk {
    /// Sequence number of `records[0]`.
    first: SequenceNumber,
    records: Arc<Vec<ProvenanceRecord>>,
}

/// Splits `records` (in ascending sequence order) into contiguous runs and
/// appends them to `chunks`.  Appends produce one run per batch; recovery
/// of a compacted store may produce several.
fn append_chunks(chunks: &mut Vec<RecordChunk>, records: Vec<ProvenanceRecord>) {
    let mut first = 0;
    let mut run: Vec<ProvenanceRecord> = Vec::new();
    for record in records {
        if run.is_empty() {
            first = record.sequence;
        } else if record.sequence != first + run.len() as u64 {
            chunks.push(RecordChunk {
                first,
                records: Arc::new(std::mem::take(&mut run)),
            });
            first = record.sequence;
        }
        run.push(record);
    }
    if !run.is_empty() {
        chunks.push(RecordChunk {
            first,
            records: Arc::new(run),
        });
    }
}

/// An immutable, internally consistent view of the engine's record log at
/// one watermark.
///
/// All four audit request kinds answer entirely from a snapshot: posting
/// lists come from its [`SharedStoreIndex`], records from its chunk list,
/// and the store itself — including its reader-writer lock — is never
/// touched.  Snapshots are cheap to hold: pin one (via
/// [`crate::AuditEngine::snapshot`]) and every query served through
/// [`crate::AuditEngine::handle_at`] sees the same frozen state, however
/// much ingest lands in the meantime.
#[derive(Debug)]
pub struct EngineSnapshot {
    chunks: Vec<RecordChunk>,
    index: SharedStoreIndex,
    watermark: SequenceNumber,
    len: usize,
}

impl EngineSnapshot {
    /// An empty snapshot (watermark 0).
    pub(crate) fn empty() -> Self {
        EngineSnapshot {
            chunks: Vec::new(),
            index: SharedStoreIndex::new(),
            watermark: 0,
            len: 0,
        }
    }

    /// Freezes an existing record log (used once, at engine construction,
    /// with the recovered store contents; afterwards snapshots only ever
    /// grow by [`EngineSnapshot::extended`]).
    pub(crate) fn from_records(records: Vec<ProvenanceRecord>) -> Self {
        let mut snapshot = EngineSnapshot::empty();
        if records.is_empty() {
            return snapshot;
        }
        snapshot.watermark = records.last().expect("non-empty").sequence;
        snapshot.len = records.len();
        snapshot.index = SharedStoreIndex::rebuild(records.iter());
        append_chunks(&mut snapshot.chunks, records);
        snapshot
    }

    /// The next snapshot: `self` plus one appended batch (ascending,
    /// non-empty).  Shares every existing chunk and every untouched index
    /// bucket with `self`.
    pub(crate) fn extended(&self, appended: Vec<ProvenanceRecord>) -> Self {
        debug_assert!(!appended.is_empty(), "publication needs records");
        let index = self.index.extended(appended.iter());
        let watermark = appended.last().expect("non-empty batch").sequence;
        debug_assert!(watermark > self.watermark, "watermarks are monotone");
        let len = self.len + appended.len();
        let mut chunks = self.chunks.clone();
        append_chunks(&mut chunks, appended);
        EngineSnapshot {
            chunks,
            index,
            watermark,
            len,
        }
    }

    /// The highest sequence number this snapshot contains (0 when empty).
    ///
    /// Every [`crate::AuditResponse`] carries the watermark of the
    /// snapshot that answered it; watermarks observed through one engine
    /// are monotone.
    pub fn watermark(&self) -> SequenceNumber {
        self.watermark
    }

    /// Number of records visible.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no record has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of immutable record chunks (one per published batch, plus
    /// the recovery chunk) — introspection for the sharing tests.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The snapshot's secondary indexes.
    pub fn index(&self) -> &SharedStoreIndex {
        &self.index
    }

    /// Looks up a record by sequence number.
    pub fn get(&self, sequence: SequenceNumber) -> Option<&ProvenanceRecord> {
        let position = self.chunks.partition_point(|c| c.first <= sequence);
        let chunk = self.chunks[..position].last()?;
        chunk.records.get((sequence - chunk.first) as usize)
    }

    /// Looks up several records by sequence number, skipping unknown ones.
    pub fn get_many<'a>(
        &'a self,
        sequences: impl IntoIterator<Item = SequenceNumber> + 'a,
    ) -> impl Iterator<Item = &'a ProvenanceRecord> + 'a {
        sequences.into_iter().filter_map(|s| self.get(s))
    }

    /// Reconstructs the audit trail of `value` as of this snapshot's
    /// watermark — the same construction [`piprov_store::StoreQuery`]
    /// uses, so a snapshot trail matches what the store itself would have
    /// answered at that watermark.
    pub fn audit_trail(&self, value: &piprov_core::value::Value) -> AuditTrail {
        let records: Vec<ProvenanceRecord> = self
            .get_many(self.index.by_value(value).iter().copied())
            .cloned()
            .collect();
        AuditTrail::from_records(value.clone(), records)
    }
}

/// The publication point: readers load the current snapshot, the ingest
/// path swaps in the next one.
///
/// Publication is a single `Arc` pointer swap under a reader-writer latch
/// held only for the swap itself (writers) or an `Arc` clone (readers) —
/// nanoseconds either way, and crucially **independent of batch size**:
/// building the next snapshot happens entirely outside the latch, so a
/// reader is never blocked behind a batch being applied, which is exactly
/// the starvation the old design (queries behind the store's reader-writer
/// lock) suffered.
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    current: RwLock<Arc<EngineSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(snapshot: EngineSnapshot) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The currently published snapshot.
    pub(crate) fn load(&self) -> Arc<EngineSnapshot> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Atomically replaces the published snapshot.
    pub(crate) fn publish(&self, snapshot: EngineSnapshot) {
        let next = Arc::new(snapshot);
        match self.current.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;
    use piprov_store::Operation;

    fn record(seq: u64, who: &str, value: &str) -> ProvenanceRecord {
        let mut r = ProvenanceRecord::new(
            seq,
            who,
            Operation::Send,
            "m",
            Value::Channel(Channel::new(value)),
            Provenance::single(Event::output(Principal::new(who), Provenance::empty())),
        );
        r.sequence = seq;
        r
    }

    #[test]
    fn lookup_spans_chunks_and_misses_cleanly() {
        let base = EngineSnapshot::from_records(vec![record(1, "a", "v"), record(2, "b", "w")]);
        let next = base.extended(vec![record(3, "c", "v")]);
        assert_eq!(next.len(), 3);
        assert_eq!(next.watermark(), 3);
        assert_eq!(next.chunk_count(), 2);
        for seq in 1..=3 {
            assert_eq!(next.get(seq).unwrap().sequence, seq);
        }
        assert!(next.get(0).is_none());
        assert!(next.get(4).is_none());
        assert!(base.get(3).is_none(), "the base snapshot is frozen");
        assert_eq!(base.watermark(), 2);
        let trail = next.audit_trail(&Value::Channel(Channel::new("v")));
        assert_eq!(
            trail.records.iter().map(|r| r.sequence).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn empty_snapshot_answers_nothing() {
        let snapshot = EngineSnapshot::empty();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.watermark(), 0);
        assert!(snapshot.get(1).is_none());
        assert!(snapshot
            .audit_trail(&Value::Channel(Channel::new("v")))
            .records
            .is_empty());
    }

    #[test]
    fn recovery_of_a_compacted_log_splits_at_the_sequence_gap() {
        // A compacted store can hold non-contiguous sequences; the
        // snapshot must still resolve each one exactly.
        let snapshot = EngineSnapshot::from_records(vec![
            record(1, "a", "v"),
            record(2, "a", "v"),
            record(7, "b", "w"),
            record(8, "b", "w"),
        ]);
        assert_eq!(snapshot.chunk_count(), 2);
        assert_eq!(snapshot.watermark(), 8);
        assert_eq!(snapshot.get(2).unwrap().sequence, 2);
        assert_eq!(snapshot.get(7).unwrap().sequence, 7);
        assert!(snapshot.get(4).is_none(), "the gap stays a miss");
        assert!(snapshot.get(9).is_none());
    }

    #[test]
    fn extending_shares_chunks_with_the_predecessor() {
        let base = EngineSnapshot::from_records(vec![record(1, "a", "v")]);
        let next = base.extended(vec![record(2, "b", "w")]);
        assert!(
            Arc::ptr_eq(&base.chunks[0].records, &next.chunks[0].records),
            "published chunks are shared, never re-copied"
        );
        assert!(Arc::ptr_eq(
            base.index
                .value_bucket(&Value::Channel(Channel::new("v")))
                .unwrap(),
            next.index
                .value_bucket(&Value::Channel(Channel::new("v")))
                .unwrap()
        ));
    }

    #[test]
    fn cell_publishes_atomically_and_pinned_snapshots_survive() {
        let cell = SnapshotCell::new(EngineSnapshot::from_records(vec![record(1, "a", "v")]));
        let pinned = cell.load();
        cell.publish(pinned.extended(vec![record(2, "b", "w")]));
        assert_eq!(pinned.watermark(), 1, "a pinned snapshot stays frozen");
        assert_eq!(cell.load().watermark(), 2);
    }
}
