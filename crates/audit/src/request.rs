//! The typed request/response vocabulary of the audit service.
//!
//! Requests name the four questions the paper motivates recorded
//! provenance with; responses carry a structured outcome plus
//! [`RequestStats`], the per-request work accounting that makes the
//! service's index-and-memo discipline observable (and testable): a
//! healthy engine answers warm queries almost entirely from posting lists
//! and memoized verdicts.

use crate::causal::{CounterfactualVerdict, EventFilter, WhySlice};
use piprov_core::name::Principal;
use piprov_core::value::Value;
use piprov_store::{AuditTrail, SequenceNumber};
use std::fmt;

/// A question posed to the [`crate::AuditEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditRequest {
    /// Does the value's current (most recently recorded) history satisfy
    /// the named policy pattern?
    VetValue {
        /// The value whose history is vetted.
        value: Value,
        /// Name of a pattern previously registered with the engine.
        pattern: String,
    },
    /// Reconstruct the full audit trail of a value: every record that
    /// exchanged it, the principals involved, the channels it travelled.
    AuditTrail {
        /// The value being audited.
        value: Value,
    },
    /// Which records (and which values) did `principal` touch, whether as
    /// the acting principal or anywhere in a recorded history?
    WhoTouched {
        /// The principal under investigation.
        principal: Principal,
    },
    /// Where did the value originate — the oldest recorded output event?
    OriginOf {
        /// The value whose origin is sought.
        value: Value,
    },
    /// *Why* does the value's history satisfy (or fail) the named policy?
    /// Answers with a [`WhySlice`]: the witness events with their DAG node
    /// ids, or the blocking frontier where every candidate trail dies.
    Why {
        /// The value whose verdict is explained.
        value: Value,
        /// Name of a pattern previously registered with the engine.
        pattern: String,
    },
    /// Would the value still satisfy the policy with some events removed?
    /// Re-vets against a filtered view of the history without materializing
    /// a copy, reusing memoized verdicts for untouched subgraphs.
    Counterfactual {
        /// The value whose history is re-vetted.
        value: Value,
        /// Name of a pattern previously registered with the engine.
        pattern: String,
        /// Which events the counterfactual removes.
        remove: EventFilter,
    },
}

impl fmt::Display for AuditRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditRequest::VetValue { value, pattern } => {
                write!(f, "vet({}, {})", value, pattern)
            }
            AuditRequest::AuditTrail { value } => write!(f, "trail({})", value),
            AuditRequest::WhoTouched { principal } => write!(f, "touched({})", principal),
            AuditRequest::OriginOf { value } => write!(f, "origin({})", value),
            AuditRequest::Why { value, pattern } => write!(f, "why({}, {})", value, pattern),
            AuditRequest::Counterfactual {
                value,
                pattern,
                remove,
            } => write!(f, "counterfactual({}, {}, -{})", value, pattern, remove),
        }
    }
}

/// Work accounting for one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Posting-list entries the store's secondary indexes supplied — the
    /// records the request consulted *without* scanning the store.
    pub index_hits: usize,
    /// Pattern-memo lookups answered from a cache (vet requests only).
    pub memo_hits: usize,
    /// Provenance DAG nodes actually walked: spine nodes the NFA
    /// simulated for a vet; for trails and origins, the top-level events
    /// of the consulted records (an O(1) cached read per record).
    pub dag_nodes_visited: usize,
    /// Memoized verdicts reused by a counterfactual re-vet specifically:
    /// the cache hits scored while matching the *filtered* view, i.e. the
    /// untouched subgraphs the filtered re-walk did not have to
    /// re-simulate.  Zero for every other request kind.  (0 on the wire
    /// when a pre-v6 peer omitted it.)
    pub memo_reused: usize,
}

/// The structured answer to one [`AuditRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditOutcome {
    /// Answer to [`AuditRequest::VetValue`].
    Vetted {
        /// Whether the value's latest recorded history satisfies the
        /// pattern.
        verdict: bool,
        /// The record whose provenance was vetted (the newest mentioning
        /// the value).
        sequence: SequenceNumber,
    },
    /// Answer to [`AuditRequest::AuditTrail`].
    Trail(AuditTrail),
    /// Answer to [`AuditRequest::WhoTouched`].
    Touched {
        /// Sequence numbers of every record the principal appears in
        /// (acting or historical), in sequence order.
        records: Vec<SequenceNumber>,
        /// Distinct values among those records, in order of first
        /// appearance.
        values: Vec<Value>,
    },
    /// Answer to [`AuditRequest::OriginOf`].
    Origin {
        /// The principal whose output event is the oldest recorded for
        /// the value, if any output was recorded.
        principal: Option<Principal>,
    },
    /// Answer to [`AuditRequest::Why`].
    Why(WhySlice),
    /// Answer to [`AuditRequest::Counterfactual`].
    Counterfactual(CounterfactualVerdict),
    /// The requested value has no records in the store.
    UnknownValue,
    /// The request named a pattern the engine has not registered.  The
    /// payload lets an operator spot a typo without a second round
    /// trip.
    UnknownPattern {
        /// Every registered policy name, sorted.
        known: Vec<String>,
        /// The registered name closest to the requested one by edit
        /// distance, when one is plausibly a typo for it.
        nearest: Option<String>,
    },
}

/// Response to one request: the outcome plus its work accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditResponse {
    /// The structured answer.
    pub outcome: AuditOutcome,
    /// What serving the answer cost.
    pub stats: RequestStats,
    /// The watermark (highest visible sequence number) of the published
    /// [`crate::EngineSnapshot`] that answered the request.  Every record
    /// a response mentions has `sequence <= watermark`, and watermarks
    /// observed through one engine are monotone — together, the engine's
    /// consistency contract (see [`crate::AuditEngine`]).
    pub watermark: SequenceNumber,
    /// Version of the policy set that answered the request.  A request
    /// loads one [`crate::PolicySet`] at entry and answers entirely
    /// from it, so every response is explained by exactly one pack
    /// version even while a hot reload swaps the registry underneath.
    /// (0 on the wire when a pre-v5 peer omitted it.)
    pub pack_version: u64,
}

impl AuditResponse {
    pub(crate) fn new(
        outcome: AuditOutcome,
        stats: RequestStats,
        watermark: SequenceNumber,
        pack_version: u64,
    ) -> Self {
        AuditResponse {
            outcome,
            stats,
            watermark,
            pack_version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::Channel;

    #[test]
    fn requests_display_compactly() {
        let v = Value::Channel(Channel::new("v"));
        assert_eq!(
            AuditRequest::VetValue {
                value: v.clone(),
                pattern: "p".into()
            }
            .to_string(),
            "vet(v, p)"
        );
        assert_eq!(
            AuditRequest::AuditTrail { value: v.clone() }.to_string(),
            "trail(v)"
        );
        assert_eq!(
            AuditRequest::WhoTouched {
                principal: Principal::new("a")
            }
            .to_string(),
            "touched(a)"
        );
        assert_eq!(AuditRequest::OriginOf { value: v }.to_string(), "origin(v)");
    }
}
