//! Request tracing: wire-propagated trace contexts, per-stage spans, and a
//! bounded lock-free ring-buffer collector.
//!
//! The metrics plane answers "how slow is the p99"; this module answers
//! "*which* request was the p99 and where did it spend its time". A
//! [`TraceContext`] is a 128-bit trace id plus a sampling flag, carried in an
//! additive wire field on every request. Each hop stamps a [`Span`] — client
//! encode, frame decode, queue wait, engine handle, response write — and the
//! server deposits the finished [`TraceRecord`] into a [`TraceCollector`]: a
//! fixed-capacity overwrite-oldest ring whose record path is a handful of
//! relaxed atomic stores behind a per-slot seqlock, so tracing never takes a
//! lock and never blocks a request.
//!
//! Traces surface three ways: rendered as deterministic text for the plain
//! `GET /trace` endpoint (see [`render_traces`] and its linter
//! [`validate_trace_text`]), returned over the wire for `AuditClient::traces`,
//! and as histogram exemplars keyed by trace id in the metrics exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::metrics::fmt_seconds;

/// Maximum spans retained per trace record: one per pipeline stage
/// (client encode, decode, queue wait, handle, write). A merged record
/// can never exceed one span per stage, so there is no headroom to pay
/// for — and the tight bound keeps a ring slot inside two cache lines,
/// which is what makes the record path cheap enough to leave sampling on.
pub const MAX_TRACE_SPANS: usize = 5;

/// A propagated trace identity: a 128-bit id plus the sampling decision.
///
/// Carried on the wire as an additive field; an absent field means the
/// request is untraced and old clients keep working unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Nonzero 128-bit trace identifier, rendered as 32 lowercase hex digits.
    pub trace_id: u128,
    /// Whether the originator elected this request for collection.
    pub sampled: bool,
}

impl TraceContext {
    /// Generates a fresh sampled context with a process-unique id.
    ///
    /// Ids mix the hasher seed entropy of [`std::collections::hash_map::RandomState`],
    /// the wall clock, and a process-wide counter, so they are unique within a
    /// process and collide across processes only with negligible probability.
    /// No external randomness dependency is required.
    pub fn generate() -> Self {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};

        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(count);
        hasher.write_u64(nanos);
        let hi = hasher.finish();
        hasher.write_u64(hi);
        let lo = hasher.finish();
        let mut trace_id = ((hi as u128) << 64) | lo as u128;
        if trace_id == 0 {
            trace_id = 1;
        }
        TraceContext {
            trace_id,
            sampled: true,
        }
    }
}

/// The pipeline stage a [`Span`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Client-side request encode + send, measured by the originator and
    /// carried over the wire so the server-side trace covers the full path.
    ClientEncode = 1,
    /// Frame body decode into a typed request.
    Decode = 2,
    /// Ingest queue dwell time between submit and apply.
    QueueWait = 3,
    /// Engine `handle()` execution, including memo/index hit counts.
    Handle = 4,
    /// Response encode + socket write/drain.
    Write = 5,
}

impl SpanKind {
    /// Stable lowercase name used in rendered traces and log lines.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ClientEncode => "client_encode",
            SpanKind::Decode => "decode",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Handle => "handle",
            SpanKind::Write => "write",
        }
    }

    /// Decodes a wire/ring byte back into a kind.
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(SpanKind::ClientEncode),
            2 => Some(SpanKind::Decode),
            3 => Some(SpanKind::QueueWait),
            4 => Some(SpanKind::Handle),
            5 => Some(SpanKind::Write),
            _ => None,
        }
    }
}

/// One timed stage of a traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Which stage this span measures.
    pub kind: SpanKind,
    /// Stage duration in nanoseconds.
    pub duration_ns: u64,
    /// Index hits observed during the stage (nonzero only for `Handle`).
    pub index_hits: u64,
    /// Memo hits observed during the stage (nonzero only for `Handle`).
    pub memo_hits: u64,
}

impl Span {
    /// A span with no auxiliary counters.
    pub fn new(kind: SpanKind, duration_ns: u64) -> Self {
        Span {
            kind,
            duration_ns,
            index_hits: 0,
            memo_hits: 0,
        }
    }
}

/// The request shape a trace describes, mirroring the wire request taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RequestKind {
    /// `AuditRequest::VetValue`.
    Vet = 1,
    /// `AuditRequest::AuditTrail`.
    Trail = 2,
    /// `AuditRequest::WhoTouched`.
    Touched = 3,
    /// `AuditRequest::OriginOf`.
    Origin = 4,
    /// An ingest batch submission (the queue-wait half arrives asynchronously).
    Ingest = 5,
    /// A flush barrier.
    Flush = 6,
    /// A stats snapshot.
    Stats = 7,
    /// A metrics snapshot.
    Metrics = 8,
    /// A traces fetch (yes, fetching traces is itself traceable).
    Traces = 9,
    /// A policy-pack installation.
    LoadPack = 10,
    /// A policy listing.
    ListPolicies = 11,
    /// `AuditRequest::Why` — a why-provenance slice.
    Why = 12,
    /// `AuditRequest::Counterfactual` — a filtered re-vet.
    Counterfactual = 13,
}

impl RequestKind {
    /// Stable lowercase name used in rendered traces and log lines.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Vet => "vet",
            RequestKind::Trail => "trail",
            RequestKind::Touched => "touched",
            RequestKind::Origin => "origin",
            RequestKind::Ingest => "ingest",
            RequestKind::Flush => "flush",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Traces => "traces",
            RequestKind::LoadPack => "load_pack",
            RequestKind::ListPolicies => "list_policies",
            RequestKind::Why => "why",
            RequestKind::Counterfactual => "counterfactual",
        }
    }

    /// Decodes a wire/ring byte back into a kind.
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(RequestKind::Vet),
            2 => Some(RequestKind::Trail),
            3 => Some(RequestKind::Touched),
            4 => Some(RequestKind::Origin),
            5 => Some(RequestKind::Ingest),
            6 => Some(RequestKind::Flush),
            7 => Some(RequestKind::Stats),
            8 => Some(RequestKind::Metrics),
            9 => Some(RequestKind::Traces),
            10 => Some(RequestKind::LoadPack),
            11 => Some(RequestKind::ListPolicies),
            12 => Some(RequestKind::Why),
            13 => Some(RequestKind::Counterfactual),
            _ => None,
        }
    }
}

/// A completed trace: the id, the request shape, the end-to-end total, and
/// the per-stage spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The propagated (or collector-assigned) 128-bit trace id.
    pub trace_id: u128,
    /// What kind of request this trace describes.
    pub kind: RequestKind,
    /// End-to-end duration in nanoseconds as observed by the recording hop.
    pub total_ns: u64,
    /// Per-stage spans, at most [`MAX_TRACE_SPANS`].
    pub spans: Vec<Span>,
}

/// Collector configuration, carried inside `ServeConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Head-based sampling period for requests that arrive without a wire
    /// context: every `sample_every`-th such request is traced. `0` disables
    /// head-based sampling, `1` traces everything.
    pub sample_every: u32,
    /// Requests at or above this end-to-end duration are always collected
    /// (and logged to stderr with a span breakdown), sampled or not.
    /// `Duration::ZERO` disables the slow path.
    pub slow_threshold: Duration,
    /// Ring capacity in records; the collector overwrites the oldest.
    pub capacity: usize,
    /// Whether the metrics exposition renders histogram exemplar suffixes.
    pub exemplars: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 1,
            slow_threshold: Duration::from_millis(100),
            capacity: 256,
            exemplars: false,
        }
    }
}

/// Per-span storage inside a ring slot: two packed words (see
/// [`pack_span`]) instead of one word per field, halving the cache lines
/// the record path must dirty.
const SPAN_WORDS: usize = 2;

/// Low 56 bits of span word 0 hold the duration; the top byte holds the
/// stage kind. 2^56 ns is over two years, so saturation is theoretical.
const DURATION_MASK: u64 = (1 << 56) - 1;

/// Low 48 bits of a slot's meta word hold the end-to-end total (2^48 ns
/// is 3.2 days); bits 48..56 hold the span count, the top byte the
/// request kind.
const TOTAL_MASK: u64 = (1 << 48) - 1;

/// Packs a span into its two ring words: `(kind << 56) | duration` and
/// `(index_hits << 32) | memo_hits`. Hit counters saturate at `u32::MAX`
/// per span — far beyond any single request's store activity.
fn pack_span(span: &Span) -> (u64, u64) {
    let w0 = ((span.kind as u8 as u64) << 56) | span.duration_ns.min(DURATION_MASK);
    let index = span.index_hits.min(u32::MAX as u64);
    let memo = span.memo_hits.min(u32::MAX as u64);
    (w0, (index << 32) | memo)
}

/// One ring slot. A per-slot sequence word (even = stable, odd = mid-write)
/// lets readers detect torn reads without the writer ever blocking. The
/// `meta` word packs kind, span count and total (see [`TOTAL_MASK`]); with
/// two words per span the whole slot is 14 words, so a 64-byte-aligned
/// record dirties exactly two cache lines.
#[repr(align(64))]
struct Slot {
    seq: AtomicU64,
    id_hi: AtomicU64,
    id_lo: AtomicU64,
    meta: AtomicU64,
    spans: [[AtomicU64; SPAN_WORDS]; MAX_TRACE_SPANS],
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            id_hi: AtomicU64::new(0),
            id_lo: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            spans: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

/// Bounded lock-free trace ring: fixed capacity, overwrite-oldest, relaxed
/// atomics on the record path. Writers never block; a reader that races a
/// wrapping writer simply skips the slot being rewritten.
pub struct TraceCollector {
    config: TraceConfig,
    /// [`TraceConfig::slow_threshold`] in nanoseconds, precomputed so the
    /// per-request finish path skips the `Duration` conversion.
    slow_ns: u64,
    slots: Vec<Slot>,
    /// Monotone ticket counter; slot = ticket % capacity. Starts at 1 so a
    /// ticket of 0 always means "never written".
    head: AtomicU64,
    /// Head-based sampling counter for requests without a wire context.
    sampler: AtomicU64,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("config", &self.config)
            .field(
                "recorded",
                &self.head.load(Ordering::Relaxed).saturating_sub(1),
            )
            .finish()
    }
}

impl TraceCollector {
    /// Creates a collector with `config.capacity` slots, rounded up to the
    /// next power of two (minimum 1) so the record path can mask instead
    /// of divide.
    pub fn new(config: TraceConfig) -> Self {
        let capacity = config.capacity.max(1).next_power_of_two();
        TraceCollector {
            config,
            slow_ns: u64::try_from(config.slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(1),
            sampler: AtomicU64::new(0),
        }
    }

    /// The configuration this collector was built with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Admission decision for an incoming request.
    ///
    /// A wire-propagated context wins: sampled passes through, unsampled
    /// suppresses collection. Without a wire context the collector applies
    /// head-based sampling per [`TraceConfig::sample_every`].
    pub fn admit(&self, wire: Option<TraceContext>) -> Option<TraceContext> {
        match wire {
            Some(ctx) if ctx.sampled => Some(ctx),
            Some(_) => None,
            None => {
                let every = self.config.sample_every;
                if every == 0 {
                    return None;
                }
                let tick = self.sampler.fetch_add(1, Ordering::Relaxed);
                if tick.is_multiple_of(every as u64) {
                    Some(TraceContext::generate())
                } else {
                    None
                }
            }
        }
    }

    /// Completes a request: records the trace if it was admitted, and records
    /// (plus logs a span breakdown to stderr) any request at or above the
    /// slow threshold even when unsampled. Returns the recorded trace id, if
    /// any — callers feed it to histogram exemplars.
    pub fn finish(
        &self,
        ctx: Option<TraceContext>,
        kind: RequestKind,
        total_ns: u64,
        spans: &[Span],
    ) -> Option<u128> {
        let slow = self.slow_ns > 0 && total_ns >= self.slow_ns;
        let ctx = match ctx {
            Some(ctx) => ctx,
            None if slow => TraceContext::generate(),
            None => return None,
        };
        if slow {
            eprintln!(
                "{}",
                slow_line(&TraceRecord {
                    trace_id: ctx.trace_id,
                    kind,
                    total_ns,
                    spans: spans.to_vec(),
                })
            );
        }
        self.record_parts(ctx.trace_id, kind, total_ns, spans);
        Some(ctx.trace_id)
    }

    /// Deposits a record into the ring, overwriting the oldest slot.
    ///
    /// Spans beyond [`MAX_TRACE_SPANS`] are dropped. Safe to call from any
    /// thread; the hot path is one `fetch_add` plus relaxed stores.
    pub fn record(&self, record: &TraceRecord) {
        self.record_parts(record.trace_id, record.kind, record.total_ns, &record.spans);
    }

    fn record_parts(&self, trace_id: u128, kind: RequestKind, total_ns: u64, spans: &[Span]) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        // Capacity is a power of two: mask, don't divide.
        let slot = &self.slots[(ticket & (self.slots.len() as u64 - 1)) as usize];
        // Mark the slot mid-write (odd seq); readers will skip or retry.
        // The sequence is derived from the ticket (mid-write `2t+1`,
        // published `2t+2`), strictly increasing per slot across ring
        // wraps — no load needed, and readers recover the arrival ticket
        // from the published value instead of a separate word. Store +
        // release fence instead of a locked RMW: slot writers can only
        // collide after a full ring wrap mid-write, and the worst outcome
        // of that race is one garbled slot the reader's field validation
        // already discards.
        slot.seq
            .store(ticket.wrapping_mul(2).wrapping_add(1), Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.id_hi.store((trace_id >> 64) as u64, Ordering::Relaxed);
        slot.id_lo.store(trace_id as u64, Ordering::Relaxed);
        let count = spans.len().min(MAX_TRACE_SPANS);
        let meta = ((kind as u8 as u64) << 56) | ((count as u64) << 48) | total_ns.min(TOTAL_MASK);
        slot.meta.store(meta, Ordering::Relaxed);
        for (i, span) in spans.iter().take(count).enumerate() {
            let (w0, w1) = pack_span(span);
            slot.spans[i][0].store(w0, Ordering::Relaxed);
            slot.spans[i][1].store(w1, Ordering::Relaxed);
        }
        // Publish (even seq).
        slot.seq
            .store(ticket.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    /// Snapshot of retained traces, oldest first, after merging records that
    /// share a trace id (an ingest's queue-wait span arrives asynchronously
    /// from the drain worker) and dropping anything shorter than
    /// `min_total_ns`.
    pub fn snapshot(&self, min_total_ns: u64) -> Vec<TraceRecord> {
        let mut raw: Vec<(u64, TraceRecord)> = Vec::new();
        for slot in &self.slots {
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before == 0 || seq_before % 2 == 1 {
                continue;
            }
            // Published seq is `2t + 2`: recover the arrival ticket.
            let ticket = seq_before.wrapping_sub(2) >> 1;
            let id_hi = slot.id_hi.load(Ordering::Relaxed);
            let id_lo = slot.id_lo.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let kind = meta >> 56;
            let total_ns = meta & TOTAL_MASK;
            let span_count = (((meta >> 48) & 0xFF) as usize).min(MAX_TRACE_SPANS);
            let mut spans = Vec::with_capacity(span_count);
            for words in slot.spans.iter().take(span_count) {
                let w0 = words[0].load(Ordering::Relaxed);
                let w1 = words[1].load(Ordering::Relaxed);
                if let Some(kind) = SpanKind::from_u8((w0 >> 56) as u8) {
                    spans.push(Span {
                        kind,
                        duration_ns: w0 & DURATION_MASK,
                        index_hits: w1 >> 32,
                        memo_hits: w1 & u32::MAX as u64,
                    });
                }
            }
            std::sync::atomic::fence(Ordering::Acquire);
            let seq_after = slot.seq.load(Ordering::Relaxed);
            if seq_after != seq_before {
                continue; // torn read: a writer wrapped past us mid-copy
            }
            let Some(kind) = u8::try_from(kind).ok().and_then(RequestKind::from_u8) else {
                continue;
            };
            if spans.len() != span_count {
                continue;
            }
            let trace_id = ((id_hi as u128) << 64) | id_lo as u128;
            if trace_id == 0 || ticket == 0 {
                continue;
            }
            raw.push((
                ticket,
                TraceRecord {
                    trace_id,
                    kind,
                    total_ns,
                    spans,
                },
            ));
        }
        raw.sort_by_key(|(ticket, _)| *ticket);

        // Merge records that share a trace id: concatenate spans (capped and
        // ordered by stage), keep the larger total, prefer the kind of the
        // record that carries the primary (non-queue-wait) spans.
        let mut merged: Vec<TraceRecord> = Vec::with_capacity(raw.len());
        for (_, record) in raw {
            match merged.iter_mut().find(|m| m.trace_id == record.trace_id) {
                Some(existing) => {
                    let only_queue_wait =
                        existing.spans.iter().all(|s| s.kind == SpanKind::QueueWait);
                    if only_queue_wait && !record.spans.is_empty() {
                        existing.kind = record.kind;
                    }
                    existing.spans.extend(record.spans);
                    existing.spans.truncate(MAX_TRACE_SPANS);
                    existing.total_ns = existing.total_ns.max(record.total_ns);
                }
                None => merged.push(record),
            }
        }
        for record in &mut merged {
            record.spans.sort_by_key(|s| s.kind as u8);
        }
        merged.retain(|r| r.total_ns >= min_total_ns);
        merged
    }
}

/// Renders traces as deterministic, lintable text — the body of `GET /trace`.
///
/// Each trace is a header line
/// `trace <32-hex-id> kind=<kind> total=<seconds> spans=<n>` followed by `n`
/// two-space-indented span lines `  <stage> <seconds>`, with
/// ` index_hits=<n> memo_hits=<n>` appended when either counter is nonzero.
pub fn render_traces(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&format!(
            "trace {:032x} kind={} total={} spans={}\n",
            record.trace_id,
            record.kind.name(),
            fmt_seconds(record.total_ns),
            record.spans.len()
        ));
        for span in &record.spans {
            out.push_str(&format!(
                "  {} {}",
                span.kind.name(),
                fmt_seconds(span.duration_ns)
            ));
            if span.index_hits != 0 || span.memo_hits != 0 {
                out.push_str(&format!(
                    " index_hits={} memo_hits={}",
                    span.index_hits, span.memo_hits
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// The stderr line emitted for a slow request: the header plus a compact
/// `stage=duration` breakdown on one line, grep-able by the scaling smoke.
pub fn slow_line(record: &TraceRecord) -> String {
    let mut line = format!(
        "piprov-serve: slow request trace {:032x} kind={} total={} spans:",
        record.trace_id,
        record.kind.name(),
        fmt_seconds(record.total_ns)
    );
    for span in &record.spans {
        line.push_str(&format!(
            " {}={}",
            span.kind.name(),
            fmt_seconds(span.duration_ns)
        ));
    }
    line
}

/// Lints a `GET /trace` body: every header must carry a 32-digit lowercase
/// hex id, a known kind, a parseable total, and a span count that matches the
/// indented span lines that follow; every span line must name a known stage
/// with a parseable duration and well-formed optional hit counters.
pub fn validate_trace_text(text: &str) -> Result<(), String> {
    const KINDS: [&str; 13] = [
        "vet",
        "trail",
        "touched",
        "origin",
        "ingest",
        "flush",
        "stats",
        "metrics",
        "traces",
        "load_pack",
        "list_policies",
        "why",
        "counterfactual",
    ];
    const STAGES: [&str; 5] = ["client_encode", "decode", "queue_wait", "handle", "write"];

    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if line.starts_with("  ") {
            return Err(format!("span line without a trace header: {line:?}"));
        }
        let mut parts = line.split(' ');
        if parts.next() != Some("trace") {
            return Err(format!("expected a trace header, got: {line:?}"));
        }
        let id = parts
            .next()
            .ok_or_else(|| format!("missing trace id: {line:?}"))?;
        if id.len() != 32
            || !id
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
        {
            return Err(format!("malformed trace id {id:?}"));
        }
        let kind = parts
            .next()
            .and_then(|p| p.strip_prefix("kind="))
            .ok_or_else(|| format!("missing kind= field: {line:?}"))?;
        if !KINDS.contains(&kind) {
            return Err(format!("unknown trace kind {kind:?}"));
        }
        let total = parts
            .next()
            .and_then(|p| p.strip_prefix("total="))
            .ok_or_else(|| format!("missing total= field: {line:?}"))?;
        if total.parse::<f64>().is_err() {
            return Err(format!("unparseable total {total:?}"));
        }
        let span_count: usize = parts
            .next()
            .and_then(|p| p.strip_prefix("spans="))
            .ok_or_else(|| format!("missing spans= field: {line:?}"))?
            .parse()
            .map_err(|_| format!("unparseable span count: {line:?}"))?;
        if parts.next().is_some() {
            return Err(format!("trailing fields on trace header: {line:?}"));
        }
        for _ in 0..span_count {
            let span_line = lines
                .next()
                .ok_or_else(|| format!("trace {id} promises {span_count} spans, text ended"))?;
            let body = span_line
                .strip_prefix("  ")
                .ok_or_else(|| format!("expected an indented span line, got: {span_line:?}"))?;
            let mut fields = body.split(' ');
            let stage = fields.next().unwrap_or_default();
            if !STAGES.contains(&stage) {
                return Err(format!("unknown span stage {stage:?}"));
            }
            let duration = fields
                .next()
                .ok_or_else(|| format!("missing span duration: {span_line:?}"))?;
            if duration.parse::<f64>().is_err() {
                return Err(format!("unparseable span duration {duration:?}"));
            }
            match (fields.next(), fields.next(), fields.next()) {
                (None, _, _) => {}
                (Some(index), Some(memo), None) => {
                    let ok = index
                        .strip_prefix("index_hits=")
                        .is_some_and(|v| v.parse::<u64>().is_ok())
                        && memo
                            .strip_prefix("memo_hits=")
                            .is_some_and(|v| v.parse::<u64>().is_ok());
                    if !ok {
                        return Err(format!("malformed span counters: {span_line:?}"));
                    }
                }
                _ => return Err(format!("malformed span line: {span_line:?}")),
            }
        }
        if lines.peek().is_some_and(|l| l.starts_with("  ")) {
            return Err(format!(
                "trace {id} has more span lines than spans={span_count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vet_record(id: u128, total_ns: u64) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            kind: RequestKind::Vet,
            total_ns,
            spans: vec![
                Span::new(SpanKind::Decode, 120),
                Span {
                    kind: SpanKind::Handle,
                    duration_ns: 900,
                    index_hits: 2,
                    memo_hits: 1,
                },
                Span::new(SpanKind::Write, 300),
            ],
        }
    }

    fn quiet_config() -> TraceConfig {
        // Slow logging off so unit tests never write to stderr.
        TraceConfig {
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert!(a.sampled && b.sampled);
    }

    #[test]
    fn the_ring_overwrites_oldest_and_orders_by_arrival() {
        let collector = TraceCollector::new(TraceConfig {
            capacity: 4,
            ..quiet_config()
        });
        for i in 1..=10u64 {
            collector.record(&vet_record(i as u128, i * 100));
        }
        let snap = collector.snapshot(0);
        let ids: Vec<u128> = snap.iter().map(|r| r.trace_id).collect();
        assert_eq!(
            ids,
            vec![7, 8, 9, 10],
            "capacity-4 ring keeps the newest four, oldest first"
        );
    }

    #[test]
    fn min_total_filters_short_traces() {
        let collector = TraceCollector::new(TraceConfig {
            capacity: 8,
            ..quiet_config()
        });
        collector.record(&vet_record(1, 500));
        collector.record(&vet_record(2, 5_000));
        let snap = collector.snapshot(1_000);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].trace_id, 2);
    }

    #[test]
    fn head_sampling_admits_one_in_n() {
        let collector = TraceCollector::new(TraceConfig {
            sample_every: 4,
            ..quiet_config()
        });
        let admitted = (0..100).filter(|_| collector.admit(None).is_some()).count();
        assert_eq!(admitted, 25);
        // sample_every == 0 disables head sampling entirely.
        let off = TraceCollector::new(TraceConfig {
            sample_every: 0,
            ..quiet_config()
        });
        assert!((0..20).all(|_| off.admit(None).is_none()));
    }

    #[test]
    fn wire_contexts_override_head_sampling() {
        let collector = TraceCollector::new(TraceConfig {
            sample_every: 0,
            ..quiet_config()
        });
        let sampled = TraceContext {
            trace_id: 7,
            sampled: true,
        };
        let unsampled = TraceContext {
            trace_id: 8,
            sampled: false,
        };
        assert_eq!(collector.admit(Some(sampled)), Some(sampled));
        assert_eq!(collector.admit(Some(unsampled)), None);
    }

    #[test]
    fn slow_requests_are_collected_even_when_unsampled() {
        let collector = TraceCollector::new(TraceConfig {
            sample_every: 0,
            slow_threshold: Duration::from_nanos(1_000),
            ..TraceConfig::default()
        });
        assert!(collector
            .finish(
                None,
                RequestKind::Vet,
                500,
                &[Span::new(SpanKind::Handle, 500)]
            )
            .is_none());
        let id = collector.finish(
            None,
            RequestKind::Vet,
            2_000,
            &[Span::new(SpanKind::Handle, 2_000)],
        );
        assert!(id.is_some());
        let snap = collector.snapshot(0);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].total_ns, 2_000);
    }

    #[test]
    fn records_sharing_a_trace_id_merge_with_spans_in_stage_order() {
        let collector = TraceCollector::new(quiet_config());
        // The drain worker's queue-wait half arrives first.
        collector.record(&TraceRecord {
            trace_id: 42,
            kind: RequestKind::Ingest,
            total_ns: 0,
            spans: vec![Span::new(SpanKind::QueueWait, 7_000)],
        });
        collector.record(&TraceRecord {
            trace_id: 42,
            kind: RequestKind::Ingest,
            total_ns: 1_500,
            spans: vec![
                Span::new(SpanKind::Decode, 200),
                Span::new(SpanKind::Handle, 800),
                Span::new(SpanKind::Write, 400),
            ],
        });
        let snap = collector.snapshot(0);
        assert_eq!(snap.len(), 1);
        let record = &snap[0];
        assert_eq!(record.kind, RequestKind::Ingest);
        assert_eq!(record.total_ns, 1_500);
        let kinds: Vec<SpanKind> = record.spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Decode,
                SpanKind::QueueWait,
                SpanKind::Handle,
                SpanKind::Write
            ]
        );
    }

    #[test]
    fn rendered_traces_pass_their_own_linter() {
        let records = vec![
            vet_record(0xdead_beef, 1_320),
            TraceRecord {
                trace_id: 5,
                kind: RequestKind::Ingest,
                total_ns: 9_999,
                spans: vec![
                    Span::new(SpanKind::ClientEncode, 100),
                    Span::new(SpanKind::QueueWait, 9_000),
                ],
            },
        ];
        let text = render_traces(&records);
        assert!(text.contains("kind=vet"));
        assert!(text.contains("  handle 0.0000009 index_hits=2 memo_hits=1"));
        validate_trace_text(&text).expect("rendered traces must lint clean");
        validate_trace_text("").expect("an empty body is a valid trace listing");
    }

    #[test]
    fn the_trace_linter_rejects_malformed_bodies() {
        let broken = [
            "  handle 0.001\n",                      // span without header
            "trace zz kind=vet total=0.1 spans=0\n", // bad id
            &format!("trace {:032x} kind=nope total=0.1 spans=0\n", 1u128), // bad kind
            &format!("trace {:032x} kind=vet total=abc spans=0\n", 1u128), // bad total
            &format!(
                "trace {:032x} kind=vet total=0.1 spans=2\n  handle 0.1\n",
                1u128
            ), // missing span
            &format!(
                "trace {:032x} kind=vet total=0.1 spans=0\n  handle 0.1\n",
                1u128
            ), // extra span
            &format!(
                "trace {:032x} kind=vet total=0.1 spans=1\n  warp 0.1\n",
                1u128
            ), // bad stage
            &format!(
                "trace {:032x} kind=vet total=0.1 spans=1\n  handle 0.1 index_hits=x memo_hits=1\n",
                1u128
            ),
        ];
        for body in broken {
            assert!(
                validate_trace_text(body).is_err(),
                "should reject: {body:?}"
            );
        }
    }

    #[test]
    fn slow_lines_carry_the_full_breakdown() {
        let line = slow_line(&vet_record(3, 150_000_000));
        assert!(line.starts_with("piprov-serve: slow request trace"));
        assert!(line.contains("kind=vet"));
        assert!(line.contains("total=0.15"));
        assert!(line.contains("decode=0.00000012"));
        assert!(line.contains("handle="));
        assert!(line.contains("write="));
    }

    #[test]
    fn concurrent_recording_never_tears_snapshots() {
        use std::sync::Arc;
        let collector = Arc::new(TraceCollector::new(TraceConfig {
            capacity: 8,
            ..quiet_config()
        }));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let collector = Arc::clone(&collector);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        collector.record(&vet_record((t * 10_000 + i) as u128 + 1, i));
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for record in collector.snapshot(0) {
                assert!(record.trace_id != 0);
                assert!(record.spans.len() <= MAX_TRACE_SPANS);
                for span in &record.spans {
                    assert!(SpanKind::from_u8(span.kind as u8).is_some());
                }
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(collector.snapshot(0).len(), 8);
    }
}
