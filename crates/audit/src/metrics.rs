//! The observability plane: per-policy latency/verdict histograms and a
//! Prometheus-style text exposition over every counter the system keeps.
//!
//! A [`MetricsRegistry`] lives inside every [`crate::AuditEngine`] and owns
//! one [`PolicyMetrics`] per registered policy: a log-spaced, fixed-bucket
//! latency histogram plus verdict counters, all plain atomics, recorded on
//! the `handle()` hot path without taking any lock beyond one uncontended
//! registry read (see the `e15_metrics` bench group for the measured
//! overhead budget).
//!
//! [`AuditEngine::metrics`](crate::AuditEngine::metrics) gathers the
//! registry together with every other counter surface the workspace keeps
//! — [`EngineStats`], [`StoreStats`], the interner's [`InternerStats`] and
//! per-shard [`ShardStats`], each policy's [`MemoStats`] — into one typed
//! [`MetricsSnapshot`], and [`MetricsSnapshot::exposition`] renders it in
//! the Prometheus text format (`# HELP`/`# TYPE`, stable names under the
//! `piprov_` prefix, the policy name as a label).
//!
//! **Drift guard.**  The exposition writer destructures every stats struct
//! exhaustively (no `..`), so adding a field to [`EngineStats`],
//! [`MemoStats`], [`ShardStats`], [`StoreStats`] or [`InternerStats`]
//! without exporting it is a *compile* error here — and the
//! `exposition.rs` test suite additionally feeds sentinel values through
//! the renderer so a field that is destructured but dropped still fails a
//! test.

use crate::engine::{AuditEngine, EngineStats};
use piprov_core::provenance::{InternerStats, ShardStats};
use piprov_patterns::MemoStats;
use piprov_store::StoreStats;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Upper bounds (nanoseconds, inclusive) of the fixed log-spaced latency
/// buckets: powers of two from 256 ns to ~8.4 ms.  A vet that takes longer
/// lands in the overflow (`+Inf`) bucket.
///
/// The bounds are part of the exposition's stable surface: dashboards key
/// on the rendered `le` values, so changing them is a breaking change.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 16] = [
    1 << 8,
    1 << 9,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
];

/// How a vet request resolved, as the histogram plane classifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VetOutcomeKind {
    /// The policy matched: verdict `true`.
    Passed,
    /// The policy did not match: verdict `false`.
    Failed,
    /// The value had no recorded history at the answering snapshot.
    UnknownValue,
}

/// A histogram exemplar: the trace id and observed value of the most
/// recent *sampled* observation that landed in one bucket — the bridge from
/// "the p99 bucket grew" to "here is a trace of a request in that bucket".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The 128-bit trace id of the sampled observation.
    pub trace_id: u128,
    /// The observed latency of that observation, nanoseconds.
    pub value_ns: u64,
}

/// Last-writer-wins exemplar storage for one bucket.  The three words are
/// stored relaxed and independently: a scrape racing a record may pair an
/// id with a neighbouring observation's value — exemplars are advisory, so
/// that is acceptable (and matches mainstream client libraries).
#[derive(Debug, Default)]
struct ExemplarCell {
    id_hi: AtomicU64,
    id_lo: AtomicU64,
    value_ns: AtomicU64,
}

impl ExemplarCell {
    fn set(&self, trace_id: u128, value_ns: u64) {
        self.id_hi.store((trace_id >> 64) as u64, Ordering::Relaxed);
        self.id_lo.store(trace_id as u64, Ordering::Relaxed);
        self.value_ns.store(value_ns, Ordering::Relaxed);
    }

    fn get(&self) -> Option<Exemplar> {
        let hi = self.id_hi.load(Ordering::Relaxed);
        let lo = self.id_lo.load(Ordering::Relaxed);
        let trace_id = ((hi as u128) << 64) | lo as u128;
        if trace_id == 0 {
            return None;
        }
        Some(Exemplar {
            trace_id,
            value_ns: self.value_ns.load(Ordering::Relaxed),
        })
    }
}

/// A lock-free, fixed-bucket latency histogram (bucket counts, sum and
/// count are independent atomics — scrapes are not linearizable with
/// records, like every Prometheus client library).
#[derive(Debug, Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_NS.len()],
    overflow: AtomicU64,
    sum_ns: AtomicU64,
    count: AtomicU64,
    exemplars: [ExemplarCell; LATENCY_BUCKET_BOUNDS_NS.len()],
    overflow_exemplar: ExemplarCell,
}

impl LatencyHistogram {
    fn record(&self, elapsed_ns: u64) {
        self.record_traced(elapsed_ns, None);
    }

    fn record_traced(&self, elapsed_ns: u64, trace_id: Option<u128>) {
        let slot = LATENCY_BUCKET_BOUNDS_NS.partition_point(|&bound| bound < elapsed_ns);
        match self.buckets.get(slot) {
            Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(trace_id) = trace_id {
            self.exemplars
                .get(slot)
                .unwrap_or(&self.overflow_exemplar)
                .set(trace_id, elapsed_ns);
        }
        self.sum_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            exemplars: self
                .exemplars
                .iter()
                .chain(std::iter::once(&self.overflow_exemplar))
                .map(ExemplarCell::get)
                .collect(),
        }
    }
}

/// The hot-path metrics of one registered policy: verdict counters plus
/// the vet latency histogram.  All atomics — recording takes no lock.
#[derive(Debug, Default)]
pub struct PolicyMetrics {
    vets_passed: AtomicU64,
    vets_failed: AtomicU64,
    vets_unknown_value: AtomicU64,
    counterfactuals: AtomicU64,
    counterfactual_flips: AtomicU64,
    latency: LatencyHistogram,
}

impl PolicyMetrics {
    /// Records one vet against this policy: `elapsed_ns` into the latency
    /// histogram, the outcome into its verdict counter.
    pub fn record(&self, elapsed_ns: u64, outcome: VetOutcomeKind) {
        self.record_traced(elapsed_ns, outcome, None);
    }

    /// Like [`PolicyMetrics::record`], additionally keeping `trace_id` as
    /// the landing bucket's exemplar when the request was sampled.
    pub fn record_traced(&self, elapsed_ns: u64, outcome: VetOutcomeKind, trace_id: Option<u128>) {
        match outcome {
            VetOutcomeKind::Passed => self.vets_passed.fetch_add(1, Ordering::Relaxed),
            VetOutcomeKind::Failed => self.vets_failed.fetch_add(1, Ordering::Relaxed),
            VetOutcomeKind::UnknownValue => self.vets_unknown_value.fetch_add(1, Ordering::Relaxed),
        };
        self.latency.record_traced(elapsed_ns, trace_id);
    }

    /// Records one counterfactual audit against this policy; `flipped`
    /// marks answers whose filtered verdict differed from the original —
    /// the removed events were causal for the verdict.
    pub fn record_counterfactual(&self, flipped: bool) {
        self.counterfactuals.fetch_add(1, Ordering::Relaxed);
        if flipped {
            self.counterfactual_flips.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The per-policy histogram registry every [`crate::AuditEngine`] owns.
///
/// Policies are registered once (by
/// [`crate::AuditEngine::register_pattern`]); the vet hot path then records
/// through one uncontended read-lock acquisition and plain atomic adds.
/// Re-registering a policy name keeps its counters: the metric timeline of
/// a hot-reloaded policy does not reset.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    policies: RwLock<HashMap<String, Arc<PolicyMetrics>>>,
    vets_unknown_pattern: AtomicU64,
    /// Wire-level: time to decode one frame body into a typed request.
    frame_decode: LatencyHistogram,
    /// Wire-level: time from decoded request to encoded response.
    request_service: LatencyHistogram,
    /// Ingest: time a batch spent queued, submit-accepted → applied.
    ingest_queue_wait: LatencyHistogram,
    /// Serving: TCP connections accepted, over the registry lifetime.
    connections_accepted: AtomicU64,
    /// Serving: TCP connections closed, over the registry lifetime.
    connections_closed: AtomicU64,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<PolicyMetrics>>> {
        match self.policies.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<PolicyMetrics>>> {
        match self.policies.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers `policy` (idempotent: an existing entry — and its
    /// counters — is kept) and returns its metrics handle.
    pub fn register_policy(&self, policy: &str) -> Arc<PolicyMetrics> {
        if let Some(existing) = self.read().get(policy) {
            return Arc::clone(existing);
        }
        Arc::clone(self.write().entry(policy.to_string()).or_default())
    }

    /// The metrics handle of a registered policy.
    pub fn policy(&self, policy: &str) -> Option<Arc<PolicyMetrics>> {
        self.read().get(policy).cloned()
    }

    /// Retires every policy row `keep` rejects — called after a pack
    /// install publishes a set that no longer names them.  A vet that
    /// pinned the old policy set and races this retirement simply finds
    /// [`MetricsRegistry::policy`] empty and skips recording; handles
    /// already cloned out keep working (the rows are `Arc`'d), they just
    /// stop being exposed.
    pub fn retain_policies(&self, keep: impl Fn(&str) -> bool) {
        self.write().retain(|name, _| keep(name));
    }

    /// Records one vet on the hot path.  Unregistered policy names are
    /// ignored (the engine counts those through
    /// [`MetricsRegistry::note_unknown_pattern`]).
    pub fn record_vet(&self, policy: &str, elapsed_ns: u64, outcome: VetOutcomeKind) {
        if let Some(metrics) = self.read().get(policy) {
            metrics.record(elapsed_ns, outcome);
        }
    }

    /// Records one wire frame's decode time (frame body → typed request).
    /// Recorded by the serving layer, in both server cores.
    pub fn record_frame_decode(&self, elapsed_ns: u64) {
        self.frame_decode.record(elapsed_ns);
    }

    /// Records one request's service time (decoded request → encoded
    /// response, including the engine or queue work in between).
    pub fn record_request_service(&self, elapsed_ns: u64) {
        self.request_service.record(elapsed_ns);
    }

    /// Like [`MetricsRegistry::record_request_service`], additionally
    /// keeping `trace_id` as the landing bucket's exemplar when the request
    /// was sampled.
    pub fn record_request_service_traced(&self, elapsed_ns: u64, trace_id: Option<u128>) {
        self.request_service.record_traced(elapsed_ns, trace_id);
    }

    /// Counts one accepted TCP connection (either server core).
    pub fn note_connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one closed TCP connection (either server core).
    pub fn note_connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// TCP connections accepted over the registry lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// TCP connections closed over the registry lifetime.
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed.load(Ordering::Relaxed)
    }

    /// Records how long one accepted ingest batch waited in the bounded
    /// queue before its apply finished (submit → applied) — the latency a
    /// producer's read-your-writes poll actually experiences.
    pub fn record_ingest_queue_wait(&self, elapsed_ns: u64) {
        self.ingest_queue_wait.record(elapsed_ns);
    }

    /// Snapshot of the frame-decode histogram.
    pub fn frame_decode_snapshot(&self) -> HistogramSnapshot {
        self.frame_decode.snapshot()
    }

    /// Snapshot of the request-service histogram.
    pub fn request_service_snapshot(&self) -> HistogramSnapshot {
        self.request_service.snapshot()
    }

    /// Snapshot of the ingest queue-wait histogram.
    pub fn ingest_queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.ingest_queue_wait.snapshot()
    }

    /// Counts one vet that named a policy the engine does not know.
    pub fn note_unknown_pattern(&self) {
        self.vets_unknown_pattern.fetch_add(1, Ordering::Relaxed);
    }

    /// Vets that named an unregistered policy, over the registry lifetime.
    pub fn unknown_pattern_vets(&self) -> u64 {
        self.vets_unknown_pattern.load(Ordering::Relaxed)
    }

    /// Immutable per-policy counters, sorted by policy name.  `memo` is
    /// filled by the engine (the registry does not own the pattern memos).
    pub fn policy_snapshots(
        &self,
        memo_of: impl Fn(&str) -> Option<MemoStats>,
    ) -> Vec<PolicySnapshot> {
        let mut policies: Vec<PolicySnapshot> = self
            .read()
            .iter()
            .map(|(name, metrics)| PolicySnapshot {
                policy: name.clone(),
                memo: memo_of(name).unwrap_or(EMPTY_MEMO),
                vets_passed: metrics.vets_passed.load(Ordering::Relaxed),
                vets_failed: metrics.vets_failed.load(Ordering::Relaxed),
                vets_unknown_value: metrics.vets_unknown_value.load(Ordering::Relaxed),
                counterfactuals: metrics.counterfactuals.load(Ordering::Relaxed),
                counterfactual_flips: metrics.counterfactual_flips.load(Ordering::Relaxed),
                latency: metrics.latency.snapshot(),
            })
            .collect();
        policies.sort_by(|a, b| a.policy.cmp(&b.policy));
        policies
    }
}

/// Memo stats of a policy whose automaton no longer exists (can only
/// happen if registration raced deregistration; rendered as zeros).
const EMPTY_MEMO: MemoStats = MemoStats {
    entries: 0,
    bound: 0,
    epochs: 0,
    hits: 0,
    misses: 0,
    retained: 0,
};

/// An immutable copy of one latency histogram: per-bucket counts aligned
/// with [`LATENCY_BUCKET_BOUNDS_NS`], the overflow bucket, and the
/// Prometheus `sum`/`count` pair.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations per bucket (NOT cumulative), one per bound in
    /// [`LATENCY_BUCKET_BOUNDS_NS`].
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Sum of all observed latencies, nanoseconds.
    pub sum_ns: u64,
    /// Total observations (equals the bucket counts plus overflow).
    pub count: u64,
    /// Per-bucket exemplars: one entry per bound in
    /// [`LATENCY_BUCKET_BOUNDS_NS`] plus a final entry for the overflow
    /// (`+Inf`) bucket.  Empty when the histogram never saw a sampled
    /// observation carrier (e.g. a snapshot decoded from an old wire peer).
    pub exemplars: Vec<Option<Exemplar>>,
}

/// One registered policy's full metric surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySnapshot {
    /// The policy's registered name (the `policy` label value).
    pub policy: String,
    /// The policy's top-level automaton memo statistics.
    pub memo: MemoStats,
    /// Vets that answered verdict `true`.
    pub vets_passed: u64,
    /// Vets that answered verdict `false`.
    pub vets_failed: u64,
    /// Vets whose value had no recorded history.
    pub vets_unknown_value: u64,
    /// Counterfactual audits served against this policy.  (0 when the
    /// snapshot was decoded from a pre-v6 wire peer.)
    pub counterfactuals: u64,
    /// Counterfactual audits whose filtered verdict differed from the
    /// original — the removed events were causal.  (0 pre-v6.)
    pub counterfactual_flips: u64,
    /// The vet latency histogram.
    pub latency: HistogramSnapshot,
}

/// Every counter surface of one engine, frozen at a point in time — the
/// typed half of the `Metrics` wire response; the text half is
/// [`MetricsSnapshot::exposition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The engine's lifetime counters and gauges.
    pub engine: EngineStats,
    /// The durable store underneath it.
    pub store: StoreStats,
    /// The process-global provenance interner, aggregated.
    pub interner: InternerStats,
    /// The interner's per-shard breakdown.
    pub interner_shards: Vec<ShardStats>,
    /// Vets that named a policy the engine does not know (these have no
    /// per-policy row to land in).
    pub vets_unknown_pattern: u64,
    /// Wire-level: frame-decode time (frame body → typed request),
    /// recorded by the serving layer in both server cores.
    pub frame_decode: HistogramSnapshot,
    /// Wire-level: per-request service time (decoded request → encoded
    /// response).
    pub request_service: HistogramSnapshot,
    /// Ingest: how long accepted batches waited in the bounded queue
    /// (submit → applied).
    pub ingest_queue_wait: HistogramSnapshot,
    /// Seconds since the engine was opened — the liveness-probe companion.
    pub uptime_seconds: u64,
    /// TCP connections accepted by the serving layer, lifetime.
    pub connections_accepted: u64,
    /// TCP connections closed by the serving layer, lifetime.
    pub connections_closed: u64,
    /// TCP connections currently open (accepted minus closed).
    pub open_connections: u64,
    /// Per-policy counters, histograms and memo statistics, sorted by
    /// policy name.
    pub policies: Vec<PolicySnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Deterministic: policies are sorted by name, shards by index, and
    /// metric families appear in a fixed order — the same snapshot always
    /// renders the same text, wherever it is rendered (the wire ships the
    /// typed snapshot; client and server render identical expositions).
    pub fn exposition(&self) -> String {
        render_exposition(self)
    }
}

impl AuditEngine {
    /// Gathers every counter surface — engine, store, interner (aggregate
    /// and per shard), and each registered policy's memo, verdict counters
    /// and latency histogram — into one [`MetricsSnapshot`].
    ///
    /// An operator/scrape path: it takes the store read lock briefly for
    /// [`StoreStats`] and never touches the query hot path.
    pub fn metrics(&self) -> MetricsSnapshot {
        let registry = self.metrics_registry();
        MetricsSnapshot {
            engine: self.stats(),
            store: self.store_stats(),
            interner: piprov_core::provenance::interner_stats(),
            interner_shards: piprov_core::provenance::interner_shard_stats(),
            vets_unknown_pattern: registry.unknown_pattern_vets(),
            frame_decode: registry.frame_decode_snapshot(),
            request_service: registry.request_service_snapshot(),
            ingest_queue_wait: registry.ingest_queue_wait_snapshot(),
            uptime_seconds: self.uptime_seconds(),
            connections_accepted: registry.connections_accepted(),
            connections_closed: registry.connections_closed(),
            open_connections: registry
                .connections_accepted()
                .saturating_sub(registry.connections_closed()),
            policies: registry.policy_snapshots(|name| self.pattern_memo_stats(name)),
        }
    }
}

/// Formats nanoseconds as decimal seconds, exactly (no float rounding):
/// `256` → `"0.000000256"`, `0` → `"0.0"`.
pub(crate) fn fmt_seconds(ns: u64) -> String {
    let mut s = format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {} {}", name, help);
    let _ = writeln!(out, "# TYPE {} {}", name, kind);
}

fn scalar(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    header(out, name, kind, help);
    let _ = writeln!(out, "{} {}", name, value);
}

/// Rendering options for the exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpositionOptions {
    /// Render OpenMetrics-style `# {trace_id="..."}` exemplar suffixes on
    /// histogram bucket samples that have a sampled observation recorded.
    /// Off by default: plain Prometheus scrapers reject the suffix.
    pub exemplars: bool,
}

/// Renders `snapshot` in the Prometheus text format.  Free-function form
/// of [`MetricsSnapshot::exposition`].
///
/// Every stats struct is destructured exhaustively here: a field added
/// anywhere in the stats plumbing that is not rendered fails to compile.
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    render_exposition_with(snapshot, &ExpositionOptions::default())
}

/// Renders `snapshot` with explicit [`ExpositionOptions`] — the serving
/// layer passes `exemplars: true` when `ServeConfig` enables them.
pub fn render_exposition_with(snapshot: &MetricsSnapshot, options: &ExpositionOptions) -> String {
    let MetricsSnapshot {
        engine,
        store,
        interner,
        interner_shards,
        vets_unknown_pattern,
        frame_decode,
        request_service,
        ingest_queue_wait,
        uptime_seconds,
        connections_accepted,
        connections_closed,
        open_connections,
        policies,
    } = snapshot;
    let EngineStats {
        requests,
        ingested,
        vets_passed,
        vets_failed,
        index_hits,
        memo_hits,
        ingest_batches,
        busy_rejections,
        queue_depth,
        snapshots_published,
        snapshot_lag,
        watermark,
    } = *engine;
    let StoreStats {
        records,
        segments,
        bytes,
    } = *store;
    let InternerStats {
        interned_nodes,
        hits: interner_hits,
        misses: interner_misses,
        shards,
    } = *interner;

    let mut out = String::with_capacity(4096);
    // -- engine ------------------------------------------------------------
    let c = "counter";
    let g = "gauge";
    scalar(
        &mut out,
        "piprov_requests_total",
        c,
        "Audit requests served, any kind, any thread.",
        requests,
    );
    scalar(
        &mut out,
        "piprov_ingested_total",
        c,
        "Provenance records ingested.",
        ingested,
    );
    scalar(
        &mut out,
        "piprov_vets_passed_total",
        c,
        "Vet requests that answered verdict true.",
        vets_passed,
    );
    scalar(
        &mut out,
        "piprov_vets_failed_total",
        c,
        "Vet requests that answered verdict false.",
        vets_failed,
    );
    scalar(
        &mut out,
        "piprov_vets_unknown_pattern_total",
        c,
        "Vet requests that named an unregistered policy.",
        *vets_unknown_pattern,
    );
    scalar(
        &mut out,
        "piprov_index_hits_total",
        c,
        "Posting-list entries supplied by the store indexes.",
        index_hits,
    );
    scalar(
        &mut out,
        "piprov_memo_hits_total",
        c,
        "Pattern-memo hits across all vet requests.",
        memo_hits,
    );
    scalar(
        &mut out,
        "piprov_ingest_batches_total",
        c,
        "Ingest batches applied (one write-lock acquisition each).",
        ingest_batches,
    );
    scalar(
        &mut out,
        "piprov_busy_rejections_total",
        c,
        "Ingest batches rejected by the bounded queue.",
        busy_rejections,
    );
    scalar(
        &mut out,
        "piprov_queue_depth",
        g,
        "Ingest batches currently queued.",
        queue_depth,
    );
    scalar(
        &mut out,
        "piprov_snapshots_published_total",
        c,
        "Engine snapshots published (one per applied batch).",
        snapshots_published,
    );
    scalar(
        &mut out,
        "piprov_snapshot_lag",
        g,
        "Accepted ingest batches not yet visible to snapshot readers.",
        snapshot_lag,
    );
    scalar(
        &mut out,
        "piprov_watermark",
        g,
        "Highest sequence number visible to readers.",
        watermark,
    );
    // -- store -------------------------------------------------------------
    scalar(
        &mut out,
        "piprov_store_records",
        g,
        "Records held by the durable store.",
        records as u64,
    );
    scalar(
        &mut out,
        "piprov_store_segments",
        g,
        "Segment files (including the active one).",
        segments as u64,
    );
    scalar(
        &mut out,
        "piprov_store_bytes",
        g,
        "Approximate bytes on disk.",
        bytes as u64,
    );
    // -- interner (process-global) ------------------------------------------
    scalar(
        &mut out,
        "piprov_interner_nodes",
        g,
        "Distinct provenance nodes interned in this process.",
        interned_nodes as u64,
    );
    scalar(
        &mut out,
        "piprov_interner_hits_total",
        c,
        "Intern calls answered by an existing node.",
        interner_hits,
    );
    scalar(
        &mut out,
        "piprov_interner_misses_total",
        c,
        "Intern calls that created a new node.",
        interner_misses,
    );
    scalar(
        &mut out,
        "piprov_interner_shards",
        g,
        "Shards the intern table is split into.",
        shards as u64,
    );
    if !interner_shards.is_empty() {
        header(
            &mut out,
            "piprov_interner_shard_entries",
            g,
            "Distinct nodes owned by one interner shard.",
        );
        for stats in interner_shards {
            let ShardStats {
                shard,
                entries,
                hits: _,
                misses: _,
            } = *stats;
            let _ = writeln!(
                out,
                "piprov_interner_shard_entries{{shard=\"{}\"}} {}",
                shard, entries
            );
        }
        header(
            &mut out,
            "piprov_interner_shard_hits_total",
            c,
            "Intern calls one shard answered from its map.",
        );
        for stats in interner_shards {
            let _ = writeln!(
                out,
                "piprov_interner_shard_hits_total{{shard=\"{}\"}} {}",
                stats.shard, stats.hits
            );
        }
        header(
            &mut out,
            "piprov_interner_shard_misses_total",
            c,
            "Intern calls that created a node in one shard.",
        );
        for stats in interner_shards {
            let _ = writeln!(
                out,
                "piprov_interner_shard_misses_total{{shard=\"{}\"}} {}",
                stats.shard, stats.misses
            );
        }
    }
    // -- serving lifecycle ---------------------------------------------------
    scalar(
        &mut out,
        "piprov_uptime_seconds",
        g,
        "Seconds since the engine was opened.",
        *uptime_seconds,
    );
    scalar(
        &mut out,
        "piprov_connections_accepted_total",
        c,
        "TCP connections accepted by the serving layer.",
        *connections_accepted,
    );
    scalar(
        &mut out,
        "piprov_connections_closed_total",
        c,
        "TCP connections closed by the serving layer.",
        *connections_closed,
    );
    scalar(
        &mut out,
        "piprov_open_connections",
        g,
        "TCP connections currently open (accepted minus closed).",
        *open_connections,
    );
    // -- wire + ingest latency ----------------------------------------------
    plain_histogram(
        &mut out,
        "piprov_frame_decode_seconds",
        "Wire frame decode time (frame body to typed request), either server core.",
        frame_decode,
        options,
    );
    plain_histogram(
        &mut out,
        "piprov_request_service_seconds",
        "Request service time (decoded request to encoded response).",
        request_service,
        options,
    );
    plain_histogram(
        &mut out,
        "piprov_ingest_queue_wait_seconds",
        "Time accepted ingest batches spent queued (submit to applied).",
        ingest_queue_wait,
        options,
    );
    // -- per-policy ---------------------------------------------------------
    if !policies.is_empty() {
        render_policy_families(&mut out, policies, options);
    }
    out
}

/// The OpenMetrics-style exemplar suffix for bucket index `slot` (buckets
/// index `0..16`, the `+Inf` bucket is the final entry), or `""`.
fn exemplar_suffix(
    histogram: &HistogramSnapshot,
    slot: usize,
    options: &ExpositionOptions,
) -> String {
    if !options.exemplars {
        return String::new();
    }
    match histogram.exemplars.get(slot) {
        Some(Some(exemplar)) => format!(
            " # {{trace_id=\"{:032x}\"}} {}",
            exemplar.trace_id,
            fmt_seconds(exemplar.value_ns)
        ),
        _ => String::new(),
    }
}

/// Renders one label-free histogram family: cumulative buckets over
/// [`LATENCY_BUCKET_BOUNDS_NS`], `+Inf`, then the `_sum`/`_count` pair.
fn plain_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    histogram: &HistogramSnapshot,
    options: &ExpositionOptions,
) {
    let HistogramSnapshot {
        counts,
        overflow: _,
        sum_ns,
        count,
        exemplars: _,
    } = histogram;
    header(out, name, "histogram", help);
    let mut cumulative = 0u64;
    for (slot, (bound, bucket)) in LATENCY_BUCKET_BOUNDS_NS.iter().zip(counts).enumerate() {
        cumulative += bucket;
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"{}\"}} {}{}",
            name,
            fmt_seconds(*bound),
            cumulative,
            exemplar_suffix(histogram, slot, options)
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{{le=\"+Inf\"}} {}{}",
        name,
        count,
        exemplar_suffix(histogram, LATENCY_BUCKET_BOUNDS_NS.len(), options)
    );
    let _ = writeln!(out, "{}_sum {}", name, fmt_seconds(*sum_ns));
    let _ = writeln!(out, "{}_count {}", name, count);
}

/// One labeled family: HELP/TYPE once, then one sample per policy.
fn policy_family(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    policies: &[PolicySnapshot],
    value: impl Fn(&PolicySnapshot) -> u64,
) {
    header(out, name, kind, help);
    for p in policies {
        let _ = writeln!(
            out,
            "{}{{policy=\"{}\"}} {}",
            name,
            escape_label(&p.policy),
            value(p)
        );
    }
}

fn render_policy_families(
    out: &mut String,
    policies: &[PolicySnapshot],
    options: &ExpositionOptions,
) {
    let c = "counter";
    let g = "gauge";
    policy_family(
        out,
        "piprov_policy_vets_passed_total",
        c,
        "Vets of this policy that answered verdict true.",
        policies,
        |p| p.vets_passed,
    );
    policy_family(
        out,
        "piprov_policy_vets_failed_total",
        c,
        "Vets of this policy that answered verdict false.",
        policies,
        |p| p.vets_failed,
    );
    policy_family(
        out,
        "piprov_policy_vets_unknown_value_total",
        c,
        "Vets of this policy whose value had no recorded history.",
        policies,
        |p| p.vets_unknown_value,
    );
    policy_family(
        out,
        "piprov_policy_counterfactuals_total",
        c,
        "Counterfactual audits served against this policy.",
        policies,
        |p| p.counterfactuals,
    );
    policy_family(
        out,
        "piprov_policy_counterfactual_flips_total",
        c,
        "Counterfactual audits whose filtered verdict differed from the original.",
        policies,
        |p| p.counterfactual_flips,
    );
    policy_family(
        out,
        "piprov_policy_memo_entries",
        g,
        "Verdicts currently held by this policy's memo.",
        policies,
        |p| p.memo.entries as u64,
    );
    policy_family(
        out,
        "piprov_policy_memo_bound",
        g,
        "Configured bound of this policy's memo.",
        policies,
        |p| p.memo.bound as u64,
    );
    policy_family(
        out,
        "piprov_policy_memo_epochs_total",
        c,
        "Eviction epochs this policy's memo has rolled through.",
        policies,
        |p| p.memo.epochs,
    );
    policy_family(
        out,
        "piprov_policy_memo_hits_total",
        c,
        "Memo lookups answered from cache for this policy.",
        policies,
        |p| p.memo.hits,
    );
    policy_family(
        out,
        "piprov_policy_memo_misses_total",
        c,
        "Memo lookups that fell through to NFA simulation.",
        policies,
        |p| p.memo.misses,
    );
    policy_family(
        out,
        "piprov_policy_memo_retained_total",
        c,
        "Hot memo entries that survived an eviction rollover.",
        policies,
        |p| p.memo.retained,
    );
    // Exhaustive use of MemoStats (drift guard): every field above.
    {
        let MemoStats {
            entries: _,
            bound: _,
            epochs: _,
            hits: _,
            misses: _,
            retained: _,
        } = policies[0].memo;
    }
    // The latency histogram.
    header(
        out,
        "piprov_vet_latency_seconds",
        "histogram",
        "Vet request latency through the engine, per policy.",
    );
    for p in policies {
        let HistogramSnapshot {
            counts,
            overflow: _,
            sum_ns,
            count,
            exemplars: _,
        } = &p.latency;
        let label = escape_label(&p.policy);
        let mut cumulative = 0u64;
        for (slot, (bound, bucket)) in LATENCY_BUCKET_BOUNDS_NS.iter().zip(counts).enumerate() {
            cumulative += bucket;
            let _ = writeln!(
                out,
                "piprov_vet_latency_seconds_bucket{{policy=\"{}\",le=\"{}\"}} {}{}",
                label,
                fmt_seconds(*bound),
                cumulative,
                exemplar_suffix(&p.latency, slot, options)
            );
        }
        let _ = writeln!(
            out,
            "piprov_vet_latency_seconds_bucket{{policy=\"{}\",le=\"+Inf\"}} {}{}",
            label,
            count,
            exemplar_suffix(&p.latency, LATENCY_BUCKET_BOUNDS_NS.len(), options)
        );
        let _ = writeln!(
            out,
            "piprov_vet_latency_seconds_sum{{policy=\"{}\"}} {}",
            label,
            fmt_seconds(*sum_ns)
        );
        let _ = writeln!(
            out,
            "piprov_vet_latency_seconds_count{{policy=\"{}\"}} {}",
            label, count
        );
    }
}

// ---------------------------------------------------------------------------
// Exposition validation (the "parser test" CI lints the live surface with).
// ---------------------------------------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `policy="x",le="+Inf"` into pairs, honouring `\"` escapes.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {{{}}}", body))?;
        let name = &rest[..eq];
        if !valid_metric_name(name) {
            return Err(format!("bad label name {:?}", name));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value after {}", name));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut closed = false;
        let mut chars = rest.char_indices();
        let mut consumed = rest.len();
        while let Some((i, ch)) = chars.next() {
            match ch {
                '\\' => {
                    let (_, escaped) = chars
                        .next()
                        .ok_or_else(|| "dangling escape in label value".to_string())?;
                    value.push(escaped);
                }
                '"' => {
                    closed = true;
                    consumed = i + 1;
                    break;
                }
                other => value.push(other),
            }
        }
        if !closed {
            return Err(format!("unterminated label value for {}", name));
        }
        rest = &rest[consumed..];
        pairs.push((name.to_string(), value));
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {:?}", rest));
        }
    }
    Ok(pairs)
}

/// The family a sample belongs to: histogram samples strip their
/// `_bucket`/`_sum`/`_count` suffix.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Checks `text` against the Prometheus text exposition format: every
/// sample names a declared family (`# TYPE` before first sample), names
/// and labels are well-formed, values parse, histogram buckets are
/// cumulative with a final `+Inf` bucket equal to the series count.
///
/// This is the lint CI runs against the *live* exposition fetched over the
/// wire, and the oracle the golden tests share.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // series key (name + non-le labels) -> (last le, last cumulative,
    // inf bucket value if seen).
    let mut buckets: HashMap<String, (f64, u64, Option<u64>)> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for (number, line) in text.lines().enumerate() {
        let lineno = number + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default();
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) || rest.is_empty() {
                        return Err(format!("line {}: malformed HELP", lineno));
                    }
                }
                "TYPE" => {
                    if !valid_metric_name(name)
                        || !matches!(rest, "counter" | "gauge" | "histogram")
                    {
                        return Err(format!("line {}: malformed TYPE", lineno));
                    }
                    types.insert(name.to_string(), rest.to_string());
                }
                other => return Err(format!("line {}: unknown comment {:?}", lineno, other)),
            }
            continue;
        }
        // A sample: name[{labels}] value [# {exemplar-labels} exemplar-value]
        let (line, exemplar) = match line.split_once(" # ") {
            Some((base, exemplar)) => (base, Some(exemplar)),
            None => (line, None),
        };
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: sample without value", lineno))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unclosed label braces", lineno))?;
                (
                    name,
                    parse_labels(body).map_err(|e| format!("line {}: {}", lineno, e))?,
                )
            }
            None => (series, Vec::new()),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {}: bad metric name {:?}", lineno, name));
        }
        let family = family_of(name, &types);
        if !types.contains_key(family) {
            return Err(format!(
                "line {}: sample {} has no preceding # TYPE",
                lineno, family
            ));
        }
        if let Some(exemplar) = exemplar {
            if !name.ends_with("_bucket")
                || types.get(family).map(String::as_str) != Some("histogram")
            {
                return Err(format!(
                    "line {}: exemplar on a non-bucket sample {}",
                    lineno, name
                ));
            }
            let (labels_part, ex_value) = exemplar
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: exemplar without value", lineno))?;
            let body = labels_part
                .strip_prefix('{')
                .and_then(|rest| rest.strip_suffix('}'))
                .ok_or_else(|| format!("line {}: exemplar labels not braced", lineno))?;
            let pairs = parse_labels(body).map_err(|e| format!("line {}: {}", lineno, e))?;
            let trace_id = pairs
                .iter()
                .find(|(k, _)| k == "trace_id")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("line {}: exemplar without trace_id label", lineno))?;
            if trace_id.len() != 32
                || !trace_id
                    .chars()
                    .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
            {
                return Err(format!(
                    "line {}: exemplar trace_id {:?} is not 32 lowercase hex digits",
                    lineno, trace_id
                ));
            }
            if ex_value.parse::<f64>().is_err() {
                return Err(format!(
                    "line {}: unparseable exemplar value {:?}",
                    lineno, ex_value
                ));
            }
        }
        let parsed: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .map_err(|_| format!("line {}: unparseable value {:?}", lineno, value))?
        };
        // Histogram bookkeeping.
        if types.get(family).map(String::as_str) == Some("histogram") {
            let series_key = |skip_le: bool| {
                let mut key = String::from(family);
                for (k, v) in &labels {
                    if skip_le && k == "le" {
                        continue;
                    }
                    let _ = write!(key, "|{}={}", k, v);
                }
                key
            };
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("line {}: bucket without le label", lineno))?;
                let le_value: f64 = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse()
                        .map_err(|_| format!("line {}: unparseable le {:?}", lineno, le))?
                };
                let cumulative = parsed as u64;
                let entry = buckets
                    .entry(series_key(true))
                    .or_insert((f64::NEG_INFINITY, 0, None));
                if le_value <= entry.0 {
                    return Err(format!("line {}: le values not increasing", lineno));
                }
                if cumulative < entry.1 {
                    return Err(format!("line {}: bucket counts not cumulative", lineno));
                }
                entry.0 = le_value;
                entry.1 = cumulative;
                if le_value.is_infinite() {
                    entry.2 = Some(cumulative);
                }
            } else if name.ends_with("_count") {
                // A _count sample carries no `le`, so its key lands in the
                // same space as the bucket series keys above.
                counts.insert(series_key(false), parsed as u64);
            }
        }
    }
    // Every bucket series must end at +Inf and agree with its _count.
    for (series, (_, _, inf)) in &buckets {
        let inf = inf.ok_or_else(|| format!("series {} has no +Inf bucket", series))?;
        if let Some(count) = counts.get(series) {
            if *count != inf {
                return Err(format!(
                    "series {}: +Inf bucket {} != count {}",
                    series, inf, count
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced_and_sorted() {
        for pair in LATENCY_BUCKET_BOUNDS_NS.windows(2) {
            assert_eq!(pair[1], pair[0] * 2, "log-spaced: each bound doubles");
        }
    }

    #[test]
    fn histogram_records_into_the_right_bucket() {
        let h = LatencyHistogram::default();
        h.record(1); // <= 256 -> bucket 0
        h.record(256); // == bound 0 (inclusive)
        h.record(257); // bucket 1
        h.record(u64::MAX); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.counts.iter().sum::<u64>() + snap.overflow, snap.count);
    }

    #[test]
    fn registry_is_idempotent_and_records_by_name() {
        let registry = MetricsRegistry::new();
        let first = registry.register_policy("p");
        first.record(100, VetOutcomeKind::Passed);
        // Re-registration keeps the counters.
        let again = registry.register_policy("p");
        assert!(Arc::ptr_eq(&first, &again));
        registry.record_vet("p", 300, VetOutcomeKind::Failed);
        registry.record_vet("p", 1_000_000, VetOutcomeKind::UnknownValue);
        registry.record_vet("ghost", 1, VetOutcomeKind::Passed); // ignored
        registry.note_unknown_pattern();
        let snaps = registry.policy_snapshots(|_| None);
        assert_eq!(snaps.len(), 1);
        let p = &snaps[0];
        assert_eq!(
            (p.vets_passed, p.vets_failed, p.vets_unknown_value),
            (1, 1, 1)
        );
        assert_eq!(p.latency.count, 3);
        assert_eq!(p.latency.sum_ns, 1_000_400);
        assert_eq!(registry.unknown_pattern_vets(), 1);
    }

    #[test]
    fn seconds_format_is_exact_decimal() {
        assert_eq!(fmt_seconds(0), "0.0");
        assert_eq!(fmt_seconds(256), "0.000000256");
        assert_eq!(fmt_seconds(1 << 23), "0.008388608");
        assert_eq!(fmt_seconds(1_000_000_000), "1.0");
        assert_eq!(fmt_seconds(2_500_000_000), "2.5");
    }

    #[test]
    fn label_escaping_round_trips_through_the_validator() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let pairs = parse_labels("policy=\"a\\\"b\\\\c\",le=\"+Inf\"").unwrap();
        assert_eq!(pairs[0].1, "a\"b\\c");
        assert_eq!(pairs[1], ("le".to_string(), "+Inf".to_string()));
    }

    #[test]
    fn validator_rejects_broken_expositions() {
        // Sample before its TYPE.
        assert!(validate_exposition("piprov_x 1\n").is_err());
        // Bad type keyword.
        assert!(validate_exposition("# TYPE piprov_x summary\n").is_err());
        // Unparseable value.
        assert!(
            validate_exposition("# HELP piprov_x h\n# TYPE piprov_x counter\npiprov_x nope\n")
                .is_err()
        );
        // Non-cumulative buckets.
        let broken = "# HELP h l\n# TYPE h histogram\n\
                      h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_exposition(broken).is_err());
        // Missing +Inf.
        let broken = "# HELP h l\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\n";
        assert!(validate_exposition(broken).is_err());
        // +Inf disagrees with _count.
        let broken = "# HELP h l\n# TYPE h histogram\n\
                      h_bucket{le=\"+Inf\"} 5\nh_count 4\n";
        assert!(validate_exposition(broken).is_err());
    }

    #[test]
    fn rendered_exposition_validates() {
        let registry = MetricsRegistry::new();
        registry.register_policy("alpha");
        registry.register_policy("beta");
        for i in 0..100u64 {
            registry.record_vet(
                "alpha",
                i * 97,
                if i % 3 == 0 {
                    VetOutcomeKind::Failed
                } else {
                    VetOutcomeKind::Passed
                },
            );
        }
        registry.record_vet("beta", 1 << 30, VetOutcomeKind::UnknownValue);
        registry.record_frame_decode(512);
        registry.record_request_service(4096);
        registry.record_ingest_queue_wait(1 << 24); // overflow bucket
        for _ in 0..3 {
            registry.note_connection_accepted();
        }
        registry.note_connection_closed();
        let snapshot = MetricsSnapshot {
            engine: EngineStats::default(),
            store: StoreStats::default(),
            interner: piprov_core::provenance::interner_stats(),
            interner_shards: piprov_core::provenance::interner_shard_stats(),
            vets_unknown_pattern: registry.unknown_pattern_vets(),
            frame_decode: registry.frame_decode_snapshot(),
            request_service: registry.request_service_snapshot(),
            ingest_queue_wait: registry.ingest_queue_wait_snapshot(),
            uptime_seconds: 12,
            connections_accepted: registry.connections_accepted(),
            connections_closed: registry.connections_closed(),
            open_connections: 2,
            policies: registry.policy_snapshots(|_| None),
        };
        let text = snapshot.exposition();
        validate_exposition(&text).unwrap_or_else(|e| panic!("{}\n---\n{}", e, text));
        assert!(text.contains("piprov_vet_latency_seconds_bucket{policy=\"alpha\","));
        assert!(text.contains("le=\"+Inf\"} 100"));
        assert!(text.contains("piprov_policy_vets_unknown_value_total{policy=\"beta\"} 1"));
        // The wire-level histograms render label-free and lint clean even
        // with only the overflow bucket populated.
        assert!(text.contains("piprov_frame_decode_seconds_bucket{le=\"0.000000512\"} 1"));
        assert!(text.contains("piprov_request_service_seconds_count 1"));
        assert!(text.contains("piprov_ingest_queue_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("piprov_ingest_queue_wait_seconds_count 1"));
        // The serving-lifecycle families render.
        assert!(text.contains("piprov_uptime_seconds 12"));
        assert!(text.contains("piprov_connections_accepted_total 3"));
        assert!(text.contains("piprov_connections_closed_total 1"));
        assert!(text.contains("piprov_open_connections 2"));
    }

    #[test]
    fn exemplars_render_behind_the_flag_and_lint_clean() {
        let registry = MetricsRegistry::new();
        registry.register_policy("alpha");
        let policy = registry.policy("alpha").unwrap();
        policy.record_traced(300, VetOutcomeKind::Passed, Some(0xabcd));
        policy.record_traced(1 << 30, VetOutcomeKind::Failed, Some(0x1234)); // +Inf bucket
        registry.record_request_service_traced(4096, Some(0x77));
        registry.record_request_service(8192); // untraced: leaves no exemplar
        let snapshot = MetricsSnapshot {
            engine: EngineStats::default(),
            store: StoreStats::default(),
            interner: piprov_core::provenance::interner_stats(),
            interner_shards: Vec::new(),
            vets_unknown_pattern: 0,
            frame_decode: registry.frame_decode_snapshot(),
            request_service: registry.request_service_snapshot(),
            ingest_queue_wait: registry.ingest_queue_wait_snapshot(),
            uptime_seconds: 0,
            connections_accepted: 0,
            connections_closed: 0,
            open_connections: 0,
            policies: registry.policy_snapshots(|_| None),
        };
        let plain = snapshot.exposition();
        assert!(!plain.contains(" # {"), "exemplars are off by default");
        validate_exposition(&plain).unwrap();
        let annotated = render_exposition_with(&snapshot, &ExpositionOptions { exemplars: true });
        let expected_vet = format!(" # {{trace_id=\"{:032x}\"}} 0.0000003", 0xabcdu128);
        assert!(annotated.contains(&expected_vet), "got:\n{}", annotated);
        let expected_inf = format!("le=\"+Inf\"}} 2 # {{trace_id=\"{:032x}\"}}", 0x1234u128);
        assert!(annotated.contains(&expected_inf), "got:\n{}", annotated);
        assert!(annotated.contains(&format!(
            " # {{trace_id=\"{:032x}\"}} 0.000004096",
            0x77u128
        )));
        validate_exposition(&annotated).unwrap_or_else(|e| panic!("{}\n---\n{}", e, annotated));
    }

    #[test]
    fn the_validator_polices_exemplar_suffixes() {
        let head = "# HELP h l\n# TYPE h histogram\n";
        let id = format!("{:032x}", 9u128);
        // Valid exemplar.
        let good =
            format!("{head}h_bucket{{le=\"+Inf\"}} 1 # {{trace_id=\"{id}\"}} 0.001\nh_count 1\n");
        validate_exposition(&good).unwrap();
        // Exemplar on a non-bucket sample.
        let bad = format!("{head}h_bucket{{le=\"+Inf\"}} 1\nh_count 1 # {{trace_id=\"{id}\"}} 1\n");
        assert!(validate_exposition(&bad).is_err());
        // Missing trace_id label.
        let bad = format!("{head}h_bucket{{le=\"+Inf\"}} 1 # {{span=\"{id}\"}} 0.001\n");
        assert!(validate_exposition(&bad).is_err());
        // Short / non-hex trace id.
        let bad = format!("{head}h_bucket{{le=\"+Inf\"}} 1 # {{trace_id=\"beef\"}} 0.001\n");
        assert!(validate_exposition(&bad).is_err());
        // Unparseable exemplar value.
        let bad = format!("{head}h_bucket{{le=\"+Inf\"}} 1 # {{trace_id=\"{id}\"}} x\n");
        assert!(validate_exposition(&bad).is_err());
    }
}
