//! # piprov-audit
//!
//! A concurrent, in-process **audit service** over recorded provenance.
//!
//! The paper's whole point is that recorded provenance lets an auditor ask
//! *after the fact*: who touched this value, where did it originate, and
//! did its history satisfy policy `π`?  The store crate answers those
//! questions single-threaded; this crate packages them as a serving layer
//! in the shape a production deployment wants — a policy *engine* that
//! owns the store plus a registry of compiled patterns and vets many
//! requests concurrently:
//!
//! * [`engine`] — the [`AuditEngine`]: a thread-safe facade over a
//!   [`piprov_store::ProvenanceStore`] and named, pre-compiled patterns
//!   with bounded memos; queries answer from MVCC snapshots, never from
//!   the store's lock;
//! * [`snapshot`] — the [`EngineSnapshot`]: the immutable, watermarked
//!   view (shared record chunks + structurally shared indexes) the ingest
//!   path publishes once per batch and every query reads;
//! * [`request`] — the typed request/response vocabulary:
//!   [`AuditRequest`] (`VetValue`, `AuditTrail`, `WhoTouched`,
//!   `OriginOf`, `Why`, `Counterfactual`), [`AuditResponse`] and
//!   per-request [`RequestStats`] (index hits, memo hits, DAG nodes
//!   visited, counterfactual memo reuse);
//! * [`causal`] — the causal-query layer: [`WhySlice`] witness sets
//!   explaining a verdict event-by-event against the interned DAG, and
//!   [`EventFilter`]-driven counterfactual audits that re-vet a filtered
//!   view of a history without materializing a copy
//!   ([`causal::filtered_view`]);
//! * [`registry`] — the versioned policy registry: immutable
//!   [`PolicySet`]s published by single pointer swap, so a whole
//!   [`piprov_policy::PolicyPack`] hot-reloads atomically
//!   ([`AuditEngine::install_pack`]) while in-flight audits keep the set
//!   — and the pack version stamped on their responses — that they
//!   loaded at entry;
//! * [`recorder`] — the [`AuditRecorder`]: a
//!   [`piprov_runtime::DeliverySink`] that streams a simulation's
//!   delivered messages into the engine while auditors query it;
//! * [`ingest`] — the bounded [`IngestQueue`]: batched ingest with typed
//!   back-pressure (`Busy` instead of unbounded buffering), each batch
//!   applied under one write-lock acquisition;
//! * [`metrics`] — the observability plane: a [`MetricsRegistry`] of
//!   per-policy verdict counters and lock-free latency histograms recorded
//!   on the vet hot path, the aggregated [`MetricsSnapshot`] over every
//!   stats surface the workspace keeps, and a Prometheus-style text
//!   exposition with a validating parser
//!   ([`metrics::validate_exposition`]);
//! * [`trace`] — the request tracing plane: wire-propagated
//!   [`TraceContext`]s, per-stage [`Span`]s (client encode, decode, queue
//!   wait, engine handle, response write), and the bounded lock-free
//!   [`TraceCollector`] ring with head-based + always-sample-slow
//!   sampling, a deterministic text renderer ([`render_traces`]) and its
//!   linter ([`validate_trace_text`]).
//!
//! Every query is answered through the store's secondary indexes — never
//! by a full scan — and every vet goes through the NFA engine's
//! `(ProvId, state set)` memo, so a long-lived service pays per *new*
//! history node, not per query.
//!
//! ```
//! use piprov_audit::{AuditEngine, AuditOutcome, AuditRequest};
//! use piprov_core::name::{Channel, Principal};
//! use piprov_core::provenance::{Event, Provenance};
//! use piprov_core::value::Value;
//! use piprov_store::{Operation, ProvenanceRecord};
//!
//! # fn main() -> Result<(), piprov_store::StoreError> {
//! let dir = std::env::temp_dir().join(format!("piprov-audit-doc-{}", std::process::id()));
//! let engine = AuditEngine::open(&dir)?;
//! engine.register_pattern("from-a", piprov_patterns::Pattern::originated_at(
//!     piprov_patterns::GroupExpr::single("a"),
//! ));
//! let k = Provenance::single(Event::output(Principal::new("a"), Provenance::empty()));
//! engine.ingest(ProvenanceRecord::new(
//!     1, "a", Operation::Send, "m", Value::Channel(Channel::new("v")), k,
//! ))?;
//! let response = engine.handle(&AuditRequest::VetValue {
//!     value: Value::Channel(Channel::new("v")),
//!     pattern: "from-a".into(),
//! });
//! assert!(matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. }));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod causal;
pub mod engine;
pub mod ingest;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod request;
pub mod snapshot;
pub mod trace;

pub use causal::{
    filtered_view, CounterfactualVerdict, EventFilter, FilteredView, WhyEvent, WhySlice,
};
pub use engine::{AuditConfig, AuditEngine, EngineStats};
pub use ingest::{BarrierError, IngestQueue, SubmitOutcome};
pub use metrics::{
    render_exposition, render_exposition_with, validate_exposition, Exemplar, ExpositionOptions,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, PolicyMetrics, PolicySnapshot,
    VetOutcomeKind, LATENCY_BUCKET_BOUNDS_NS,
};
pub use recorder::AuditRecorder;
pub use registry::{PackInstall, PolicyEntry, PolicyInfo, PolicyListing, PolicySet};
pub use request::{AuditOutcome, AuditRequest, AuditResponse, RequestStats};
pub use snapshot::EngineSnapshot;
pub use trace::{
    render_traces, validate_trace_text, RequestKind, Span, SpanKind, TraceCollector, TraceConfig,
    TraceContext, TraceRecord,
};
