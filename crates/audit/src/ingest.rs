//! Bounded, batched ingest with typed back-pressure.
//!
//! The serving layer must never buffer a hostile or merely over-eager
//! writer without bound: the [`IngestQueue`] holds at most a configured
//! number of *batches*; a submission that finds the queue full is rejected
//! immediately with [`SubmitOutcome::Busy`] (counted in
//! [`crate::EngineStats::busy_rejections`]) instead of growing the heap.
//! Accepted batches are drained by one worker thread that applies each
//! batch to the [`AuditEngine`] under a **single write-lock acquisition**
//! ([`AuditEngine::ingest_batch`]), so ingest pays for the lock — and for
//! the auditors it excludes — once per batch rather than once per record.
//!
//! The queue is what a network front-end (see `piprov-serve`) answers
//! `IngestBatch` requests with: `Accepted` becomes an `IngestAck` frame,
//! `Busy` becomes a typed `Busy` frame the client can back off on — and
//! remote `Flush` frames are answered by [`IngestQueue::barrier`], the
//! bounded wait that (unlike the owner-facing [`IngestQueue::flush`])
//! never flips the pause hook and never parks a server thread forever.

use crate::engine::AuditEngine;
use crate::trace::{RequestKind, Span, SpanKind, TraceCollector, TraceContext, TraceRecord};
use piprov_store::{ProvenanceRecord, StoreError};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The immediate answer to one batch submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The batch was queued; `queue_depth` batches (including this one)
    /// are now waiting for the worker.
    Accepted {
        /// Batches waiting after the submission.
        queue_depth: usize,
    },
    /// The queue was full (or shut down): nothing was buffered, the caller
    /// should back off and retry.
    Busy {
        /// Batches waiting at the moment of rejection.
        queue_depth: usize,
    },
}

impl SubmitOutcome {
    /// `true` for [`SubmitOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted { .. })
    }
}

/// Mutable queue state, guarded by one mutex.
struct QueueState {
    /// Accepted batches, each stamped with its submit instant so the
    /// drain worker can record submit→applied queue-wait latency, plus the
    /// trace context of the submitting request (if it was sampled) so the
    /// asynchronous queue-wait span lands in the same trace.
    batches: VecDeque<(Instant, Vec<ProvenanceRecord>, Option<TraceContext>)>,
    /// The worker is currently applying a popped batch (it no longer counts
    /// against the capacity, but a flush must still wait for it).
    in_flight: bool,
    /// While paused the worker leaves the queue untouched — a test hook
    /// that makes back-pressure deterministic to observe.
    paused: bool,
    closed: bool,
    /// First store error the worker hit; surfaced by flush/shutdown.
    error: Option<StoreError>,
}

struct Shared {
    engine: Arc<AuditEngine>,
    state: Mutex<QueueState>,
    /// Wakes the worker: new batch, unpause, or close.
    work: Condvar,
    /// Wakes flushers: the queue drained and the worker went idle.
    idle: Condvar,
    capacity: usize,
    /// Where the drain worker deposits queue-wait spans for traced batches.
    collector: Option<Arc<TraceCollector>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The **only** place the engine's `queue_depth`/`snapshot_lag` gauges
    /// are written.  Called under the state lock at every transition that
    /// can move them (submit — accepted *or* rejected — pop, and
    /// after-apply), so the gauges can never drift from the state they
    /// describe as call sites multiply.
    fn publish_gauges(&self, state: &QueueState) {
        let depth = state.batches.len();
        self.engine.set_queue_depth(depth);
        // A popped batch no longer counts against the queue depth but is
        // still invisible to readers until its snapshot publishes — the
        // lag an operator watches where `queue_depth` alone would hide it.
        self.engine
            .set_snapshot_lag(depth + state.in_flight as usize);
    }
}

/// Why [`IngestQueue::barrier`] did not come back clean.
#[derive(Debug)]
pub enum BarrierError {
    /// The queue did not drain within the allowed wait.  The queue itself
    /// is unharmed — batches keep draining; only this caller gave up.
    TimedOut {
        /// Batches still waiting when the barrier gave up.
        queue_depth: usize,
        /// Whether the worker was mid-application at that moment.
        in_flight: bool,
    },
    /// The worker (or the final store sync) hit a store error.
    Store(StoreError),
}

impl fmt::Display for BarrierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierError::TimedOut {
                queue_depth,
                in_flight,
            } => write!(
                f,
                "ingest barrier timed out ({} batches queued, worker {})",
                queue_depth,
                if *in_flight { "applying" } else { "idle" }
            ),
            BarrierError::Store(error) => write!(f, "ingest barrier: {}", error),
        }
    }
}

impl std::error::Error for BarrierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BarrierError::TimedOut { .. } => None,
            BarrierError::Store(error) => Some(error),
        }
    }
}

impl From<StoreError> for BarrierError {
    fn from(error: StoreError) -> Self {
        BarrierError::Store(error)
    }
}

/// A bounded ingest queue with one drain worker.
///
/// Dropping the queue shuts it down: remaining batches are drained, the
/// worker joins.  Use [`IngestQueue::shutdown`] to also observe errors.
#[derive(Debug)]
pub struct IngestQueue {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestQueueShared")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl IngestQueue {
    /// Starts a queue holding at most `capacity` batches (clamped to at
    /// least 1) draining into `engine`.
    pub fn start(engine: Arc<AuditEngine>, capacity: usize) -> Self {
        IngestQueue::start_with_trace(engine, capacity, None)
    }

    /// [`IngestQueue::start`] with a trace collector: the drain worker
    /// deposits a queue-wait span into `collector` for every traced batch
    /// it applies, keyed by the submitting request's trace id.
    pub fn start_with_trace(
        engine: Arc<AuditEngine>,
        capacity: usize,
        collector: Option<Arc<TraceCollector>>,
    ) -> Self {
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(QueueState {
                batches: VecDeque::new(),
                in_flight: false,
                paused: false,
                closed: false,
                error: None,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
            collector,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("piprov-ingest".into())
            .spawn(move || drain_loop(&worker_shared))
            .expect("spawn ingest worker");
        IngestQueue {
            shared,
            worker: Some(worker),
        }
    }

    /// The engine this queue drains into.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.shared.engine
    }

    /// Maximum number of batches held.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Batches currently waiting (excluding one the worker may be
    /// applying).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().batches.len()
    }

    /// Submits one batch without blocking.  An empty batch is accepted as
    /// a no-op.  A full (or shut-down) queue rejects with
    /// [`SubmitOutcome::Busy`] — nothing is buffered, and the rejection is
    /// counted in the engine's `busy_rejections`.
    pub fn try_submit(&self, batch: Vec<ProvenanceRecord>) -> SubmitOutcome {
        self.try_submit_traced(batch, None)
    }

    /// [`IngestQueue::try_submit`] for a traced request: `trace` rides
    /// along with the batch so the drain worker can stamp the asynchronous
    /// queue-wait span into the same trace.
    pub fn try_submit_traced(
        &self,
        batch: Vec<ProvenanceRecord>,
        trace: Option<TraceContext>,
    ) -> SubmitOutcome {
        let mut state = self.shared.lock();
        let depth = state.batches.len();
        if batch.is_empty() {
            return SubmitOutcome::Accepted { queue_depth: depth };
        }
        if state.closed || depth >= self.shared.capacity {
            // Refresh the gauges on rejection too: a Busy flood must leave
            // them describing the real queue, not the last acceptance.
            self.shared.publish_gauges(&state);
            drop(state);
            self.shared.engine.note_busy_rejection();
            return SubmitOutcome::Busy { queue_depth: depth };
        }
        state.batches.push_back((Instant::now(), batch, trace));
        let queue_depth = state.batches.len();
        self.shared.publish_gauges(&state);
        drop(state);
        self.shared.work.notify_one();
        SubmitOutcome::Accepted { queue_depth }
    }

    /// Pauses or resumes the drain worker.  While paused, accepted batches
    /// stay queued and overflow turns into `Busy` — the hook that makes
    /// back-pressure tests deterministic.
    pub fn set_paused(&self, paused: bool) {
        self.shared.lock().paused = paused;
        self.shared.work.notify_all();
    }

    /// Blocks until every queued batch has been applied and the worker is
    /// idle, then syncs the engine's store, so everything submitted before
    /// the call is both queryable and durable after it.
    ///
    /// Unpauses the worker first (a paused queue would otherwise never
    /// drain) and waits without bound — this is the owner/test path; a
    /// network front-end answering remote `Flush` frames must use
    /// [`IngestQueue::barrier`] instead, which touches neither the pause
    /// hook nor a thread's patience.
    ///
    /// # Errors
    ///
    /// Surfaces the first error the worker hit since the last flush, or a
    /// sync failure.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut state = self.shared.lock();
        state.paused = false;
        self.shared.work.notify_all();
        while !state.batches.is_empty() || state.in_flight {
            state = match self.shared.idle.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        if let Some(error) = state.error.take() {
            return Err(error);
        }
        drop(state);
        self.shared.engine.sync()
    }

    /// Waits — at most `timeout` — for every queued batch to be applied
    /// and the worker to go idle, then syncs the engine's store: the
    /// wire-facing flush barrier.
    ///
    /// Unlike [`IngestQueue::flush`], this is safe to expose to untrusted
    /// remote callers:
    ///
    /// * it **never touches the pause hook** — a queue deliberately paused
    ///   by its owner (a deterministic test, an operator) stays paused; the
    ///   barrier simply times out if the queue cannot drain;
    /// * the wait is **bounded** — a slow or hostile flusher parks the
    ///   calling thread for at most `timeout`, not forever.
    ///
    /// # Errors
    ///
    /// [`BarrierError::TimedOut`] if the queue did not drain in time (the
    /// queue keeps draining; only this wait gave up), or
    /// [`BarrierError::Store`] surfacing the first error the worker hit
    /// since the last flush/barrier, or a sync failure.
    pub fn barrier(&self, timeout: Duration) -> Result<(), BarrierError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.shared.lock();
        while !state.batches.is_empty() || state.in_flight {
            let remaining = deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::MAX);
            if remaining.is_zero() {
                return Err(BarrierError::TimedOut {
                    queue_depth: state.batches.len(),
                    in_flight: state.in_flight,
                });
            }
            let (guard, _) = match self.shared.idle.wait_timeout(state, remaining) {
                Ok(result) => result,
                Err(poisoned) => poisoned.into_inner(),
            };
            state = guard;
        }
        if let Some(error) = state.error.take() {
            return Err(BarrierError::Store(error));
        }
        drop(state);
        self.shared.engine.sync()?;
        Ok(())
    }

    /// Drains the queue, stops the worker and surfaces any deferred error.
    ///
    /// # Errors
    ///
    /// As [`IngestQueue::flush`].
    pub fn shutdown(mut self) -> Result<(), StoreError> {
        let result = self.flush();
        self.close_and_join();
        result
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.closed = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for IngestQueue {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// The worker: pop a batch (unless paused), apply it under one write lock,
/// publish the depth gauge, repeat until closed and drained.
fn drain_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = shared.lock();
            loop {
                // A closed queue still drains what was accepted.
                if !state.paused || state.closed {
                    if let Some(stamped) = state.batches.pop_front() {
                        state.in_flight = true;
                        shared.publish_gauges(&state);
                        break Some(stamped);
                    }
                }
                if state.closed {
                    break None;
                }
                state = match shared.work.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some((submitted, batch, trace)) = batch else {
            shared.idle.notify_all();
            return;
        };
        let result = shared.engine.ingest_batch(batch);
        // Submit → applied: the wait a producer's read-your-writes poll
        // experiences, queue time and apply time included.
        let waited = u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .engine
            .metrics_registry()
            .record_ingest_queue_wait(waited);
        // The serve layer already recorded the synchronous half of the
        // trace (decode/handle/write around the IngestAck); this record
        // carries only the asynchronous queue-wait span and merges with it
        // by trace id at snapshot time.
        if let (Some(collector), Some(trace)) = (shared.collector.as_ref(), trace) {
            if trace.sampled {
                collector.record(&TraceRecord {
                    trace_id: trace.trace_id,
                    kind: RequestKind::Ingest,
                    total_ns: 0,
                    spans: vec![Span::new(SpanKind::QueueWait, waited)],
                });
            }
        }
        let mut state = shared.lock();
        state.in_flight = false;
        shared.publish_gauges(&state);
        if let (Err(error), None) = (result, state.error.as_ref()) {
            state.error = Some(error);
        }
        if state.batches.is_empty() {
            drop(state);
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;
    use piprov_store::Operation;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-ingestq-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(i: u64) -> ProvenanceRecord {
        let who = Principal::new(format!("p{}", i % 5));
        let k = Provenance::single(Event::output(who.clone(), Provenance::empty()));
        ProvenanceRecord::new(
            i,
            who,
            Operation::Send,
            "m",
            Value::Channel(Channel::new(format!("item{}", i))),
            k,
        )
    }

    fn batch(from: u64, len: u64) -> Vec<ProvenanceRecord> {
        (from..from + len).map(record).collect()
    }

    #[test]
    fn flooding_a_one_deep_queue_yields_busy_not_buffering() {
        let dir = temp_dir("busy");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let queue = IngestQueue::start(Arc::clone(&engine), 1);
        queue.set_paused(true);
        assert!(queue.try_submit(batch(0, 4)).is_accepted());
        // The queue is full and the worker is paused: every further batch
        // is rejected with a typed Busy — no unbounded buffering.
        for _ in 0..3 {
            assert_eq!(
                queue.try_submit(batch(100, 2)),
                SubmitOutcome::Busy { queue_depth: 1 }
            );
        }
        assert_eq!(queue.queue_depth(), 1);
        let stats = engine.stats();
        assert_eq!(stats.busy_rejections, 3);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.ingested, 0, "nothing applied while paused");
        // Resume: the accepted batch lands, the rejected ones never will.
        queue.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.ingested, 4);
        assert_eq!(stats.ingest_batches, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(engine.record_count(), 4);
        // The queue accepts again after draining.
        assert!(queue.try_submit(batch(200, 1)).is_accepted());
        queue.shutdown().unwrap();
        assert_eq!(engine.record_count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batches_apply_under_one_lock_acquisition_each() {
        let dir = temp_dir("batches");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let queue = IngestQueue::start(Arc::clone(&engine), 8);
        for b in 0..5u64 {
            assert!(queue.try_submit(batch(b * 10, 10)).is_accepted());
        }
        queue.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.ingested, 50);
        assert_eq!(stats.ingest_batches, 5, "one lock acquisition per batch");
        assert_eq!(stats.busy_rejections, 0);
        queue.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batches_are_accepted_no_ops() {
        let dir = temp_dir("empty");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let queue = IngestQueue::start(Arc::clone(&engine), 1);
        assert_eq!(
            queue.try_submit(Vec::new()),
            SubmitOutcome::Accepted { queue_depth: 0 }
        );
        queue.shutdown().unwrap();
        assert_eq!(engine.stats().ingest_batches, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_drains_accepted_batches() {
        let dir = temp_dir("drop");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        {
            let queue = IngestQueue::start(Arc::clone(&engine), 4);
            assert!(queue.try_submit(batch(0, 3)).is_accepted());
            assert!(queue.try_submit(batch(10, 2)).is_accepted());
            // Dropped without an explicit flush.
        }
        assert_eq!(engine.record_count(), 5, "drop drains, not discards");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn barrier_never_unpauses_and_times_out_bounded() {
        let dir = temp_dir("barrier");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let queue = IngestQueue::start(Arc::clone(&engine), 4);
        queue.set_paused(true);
        assert!(queue.try_submit(batch(0, 3)).is_accepted());
        // The barrier must not flip the pause hook: the queue cannot
        // drain, so the bounded wait times out with the typed error...
        let started = Instant::now();
        let error = queue.barrier(Duration::from_millis(50)).unwrap_err();
        assert!(
            matches!(
                error,
                BarrierError::TimedOut {
                    queue_depth: 1,
                    in_flight: false
                }
            ),
            "{:?}",
            error
        );
        assert!(error.to_string().contains("timed out"));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the wait is bounded"
        );
        // ...and the queue is still paused: nothing was applied.
        assert_eq!(engine.stats().ingested, 0, "barrier left the pause alone");
        assert_eq!(queue.queue_depth(), 1);
        // Once the owner resumes, the same barrier succeeds.
        queue.set_paused(false);
        queue.barrier(Duration::from_secs(30)).unwrap();
        assert_eq!(engine.stats().ingested, 3);
        // An idle queue's barrier returns immediately even while paused.
        queue.set_paused(true);
        queue.barrier(Duration::from_millis(1)).unwrap();
        queue.set_paused(false);
        queue.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gauges_match_queue_state_at_quiescence_and_after_a_busy_flood() {
        let dir = temp_dir("gauges");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let queue = IngestQueue::start(Arc::clone(&engine), 2);
        // Pause, fill to capacity, then flood: the Busy path must refresh
        // the gauges too, so they describe the real queue afterwards.
        queue.set_paused(true);
        assert!(queue.try_submit(batch(0, 2)).is_accepted());
        assert!(queue.try_submit(batch(10, 2)).is_accepted());
        for i in 0..20u64 {
            assert!(!queue.try_submit(batch(100 + i * 10, 1)).is_accepted());
        }
        let stats = engine.stats();
        assert_eq!(stats.queue_depth as usize, queue.queue_depth());
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(
            stats.snapshot_lag, 2,
            "paused worker: lag is exactly the queued batches"
        );
        assert_eq!(stats.busy_rejections, 20);
        // Drain to quiescence: both gauges return to zero and agree with
        // the queue's own accounting.
        queue.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(queue.queue_depth(), 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.snapshot_lag, 0);
        queue.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_submissions_deposit_a_queue_wait_span() {
        use crate::trace::{SpanKind, TraceCollector, TraceConfig, TraceContext};
        let dir = temp_dir("traced");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let collector = Arc::new(TraceCollector::new(TraceConfig {
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        }));
        let queue =
            IngestQueue::start_with_trace(Arc::clone(&engine), 4, Some(Arc::clone(&collector)));
        let sampled = TraceContext {
            trace_id: 0xfeed,
            sampled: true,
        };
        let unsampled = TraceContext {
            trace_id: 0xdead,
            sampled: false,
        };
        assert!(queue
            .try_submit_traced(batch(0, 3), Some(sampled))
            .is_accepted());
        assert!(queue
            .try_submit_traced(batch(10, 2), Some(unsampled))
            .is_accepted());
        assert!(queue.try_submit(batch(20, 1)).is_accepted());
        queue.flush().unwrap();
        let traces = collector.snapshot(0);
        assert_eq!(traces.len(), 1, "only the sampled batch leaves a trace");
        assert_eq!(traces[0].trace_id, 0xfeed);
        assert_eq!(traces[0].spans.len(), 1);
        assert_eq!(traces[0].spans[0].kind, SpanKind::QueueWait);
        assert!(traces[0].spans[0].duration_ns > 0);
        queue.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_submitters_never_exceed_capacity() {
        use std::thread;
        let dir = temp_dir("concurrent");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let queue = Arc::new(IngestQueue::start(Arc::clone(&engine), 2));
        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut accepted = 0u64;
                    let mut attempts = 0u64;
                    for i in 0..200u64 {
                        attempts += 1;
                        if queue
                            .try_submit(batch(t * 10_000 + i * 10, 3))
                            .is_accepted()
                        {
                            accepted += 1;
                        }
                        assert!(queue.queue_depth() <= 2);
                    }
                    (accepted, attempts)
                })
            })
            .collect();
        let mut accepted = 0u64;
        for handle in submitters {
            let (a, _) = handle.join().unwrap();
            accepted += a;
        }
        let queue = Arc::try_unwrap(queue).expect("all submitters joined");
        queue.shutdown().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.ingested, accepted * 3);
        assert_eq!(stats.ingest_batches, accepted);
        assert_eq!(
            stats.busy_rejections,
            4 * 200 - accepted,
            "every attempt either lands or is counted busy"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
