//! The versioned policy registry: atomically swappable sets of
//! compiled policies.
//!
//! The registry holds one immutable [`PolicySet`] behind an `Arc`.  A
//! request loads the `Arc` once at entry and answers entirely from
//! that set, mirroring the engine's MVCC snapshot discipline: a pack
//! installation builds the next set off to the side and publishes it
//! with a single pointer swap, so in-flight audits keep answering from
//! the set (and the version) they started with, and no vet can observe
//! a half-installed pack.  Every published set carries a monotonically
//! increasing version, stamped onto each [`crate::AuditResponse`].

use piprov_patterns::CompiledPattern;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// One registered policy: its origin package, canonical source text,
/// and compiled automaton (shared so memo state survives reinstalls of
/// an unchanged policy).
#[derive(Debug)]
pub struct PolicyEntry {
    /// The policy's package (`supply_chain::build`), empty for
    /// policies registered programmatically.
    pub package: String,
    /// Canonical textual form of the pattern.
    pub source: String,
    /// The compiled automaton, memo and all.
    pub compiled: Arc<CompiledPattern>,
}

/// An immutable, versioned set of policies.
#[derive(Debug)]
pub struct PolicySet {
    version: u64,
    policies: HashMap<String, Arc<PolicyEntry>>,
}

impl PolicySet {
    /// The set's version: 0 for the initial empty set, bumped by one
    /// on every publication.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Looks up a policy by name.
    pub fn get(&self, name: &str) -> Option<&Arc<PolicyEntry>> {
        self.policies.get(name)
    }

    /// Number of policies in the set.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the set has no policies.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Policy names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.policies.keys().cloned().collect();
        names.sort();
        names
    }

    /// Iterates over `(name, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Arc<PolicyEntry>)> {
        self.policies.iter()
    }
}

/// A description of one policy, as listed over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyInfo {
    /// Fully qualified policy name.
    pub name: String,
    /// Source package (empty for programmatic registrations).
    pub package: String,
    /// Canonical pattern text.
    pub source: String,
}

/// The policy listing returned by `ListPolicies`: the registry version
/// plus every policy, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyListing {
    /// The registry version the listing describes.
    pub version: u64,
    /// Every registered policy, sorted by name.
    pub policies: Vec<PolicyInfo>,
}

impl fmt::Display for PolicyListing {
    /// The deterministic text listing `GET /policies` serves: a header
    /// line with the pack version and count, then one
    /// `name [package] = source` line per policy, sorted by name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# pack version {} ({} policies)",
            self.version,
            self.policies.len()
        )?;
        for policy in &self.policies {
            writeln!(
                f,
                "{} [{}] = {}",
                policy.name, policy.package, policy.source
            )?;
        }
        Ok(())
    }
}

/// Result of installing a pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackInstall {
    /// The version the new set was published at.
    pub version: u64,
    /// Policies in the installed set.
    pub installed: usize,
    /// Of those, how many were carried over unchanged (same name and
    /// source), keeping their compiled automaton and memo.
    pub reused: usize,
}

/// The swappable registry cell.
#[derive(Debug)]
pub(crate) struct PolicyRegistry {
    current: RwLock<Arc<PolicySet>>,
}

impl PolicyRegistry {
    /// An empty registry at version 0.
    pub(crate) fn new() -> PolicyRegistry {
        PolicyRegistry {
            current: RwLock::new(Arc::new(PolicySet {
                version: 0,
                policies: HashMap::new(),
            })),
        }
    }

    /// Loads the current set: one `Arc` clone under a read lock held
    /// for the pointer copy alone.
    pub(crate) fn load(&self) -> Arc<PolicySet> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Publishes `policies` as the next set, bumping the version.
    /// Readers that loaded the previous set keep it alive through
    /// their `Arc`; new loads observe the new set immediately.
    pub(crate) fn publish(&self, policies: HashMap<String, Arc<PolicyEntry>>) -> Arc<PolicySet> {
        let mut guard = match self.current.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let next = Arc::new(PolicySet {
            version: guard.version + 1,
            policies,
        });
        *guard = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_patterns::{parse_pattern, Pattern};

    fn entry(source: &str) -> Arc<PolicyEntry> {
        let pattern: Pattern = parse_pattern(source).unwrap();
        Arc::new(PolicyEntry {
            package: String::new(),
            source: source.to_string(),
            compiled: Arc::new(CompiledPattern::compile(&pattern)),
        })
    }

    #[test]
    fn registry_starts_empty_at_version_zero() {
        let registry = PolicyRegistry::new();
        let set = registry.load();
        assert_eq!(set.version(), 0);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(set.names().is_empty());
    }

    #[test]
    fn publish_bumps_the_version_and_old_loads_stay_pinned() {
        let registry = PolicyRegistry::new();
        let before = registry.load();

        let mut policies = HashMap::new();
        policies.insert("a".to_string(), entry("Any"));
        let published = registry.publish(policies);
        assert_eq!(published.version(), 1);

        // The pinned set is unaffected; a fresh load sees the new one.
        assert_eq!(before.version(), 0);
        assert!(before.is_empty());
        let after = registry.load();
        assert_eq!(after.version(), 1);
        assert_eq!(after.names(), vec!["a".to_string()]);
        assert!(after.get("a").is_some());
        assert_eq!(after.iter().count(), 1);
    }
}
