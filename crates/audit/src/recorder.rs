//! Streams a simulation's deliveries into an audit engine.
//!
//! The [`AuditRecorder`] is the glue between the simulated deployment and
//! the serving layer: it implements [`piprov_runtime::DeliverySink`], so a
//! [`piprov_runtime::Simulation`] run with
//! [`piprov_runtime::sim::Simulation::run_with_sink`] persists one
//! [`ProvenanceRecord`] per delivered payload value into the shared
//! [`AuditEngine`] — exactly what the paper's trusted middleware would
//! hand to provenance-aware storage — while auditor threads query the
//! same engine concurrently.

use crate::engine::AuditEngine;
use piprov_core::name::Principal;
use piprov_core::system::Message;
use piprov_runtime::{DeliverySink, VirtualTime};
use piprov_store::{Operation, ProvenanceRecord, StoreError};
use std::sync::Arc;

/// A [`DeliverySink`] that appends every delivered value into an
/// [`AuditEngine`].
#[derive(Debug)]
pub struct AuditRecorder {
    engine: Arc<AuditEngine>,
    recorded: usize,
    /// The first store error encountered, if any (the sink interface
    /// cannot propagate it mid-run).
    error: Option<StoreError>,
}

impl AuditRecorder {
    /// Creates a recorder streaming into `engine`.
    pub fn new(engine: Arc<AuditEngine>) -> Self {
        AuditRecorder {
            engine,
            recorded: 0,
            error: None,
        }
    }

    /// Number of records appended so far.
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// The engine this recorder streams into.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.engine
    }

    /// Consumes the recorder, surfacing the first ingest error (if any)
    /// after syncing the store.
    ///
    /// # Errors
    ///
    /// Returns the first error any ingest hit during the run, or a sync
    /// failure.
    pub fn finish(mut self) -> Result<usize, StoreError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.engine.sync()?;
        Ok(self.recorded)
    }
}

impl DeliverySink for AuditRecorder {
    fn delivered(&mut self, sender: &Principal, message: &Message, at: VirtualTime) {
        if self.error.is_some() {
            return;
        }
        // One batch — and so one published snapshot — per delivered
        // message: concurrent auditors see a multi-value payload
        // atomically, and the engine pays one publication per delivery
        // instead of one per value.
        let records: Vec<ProvenanceRecord> = message
            .payload
            .iter()
            .map(|value| {
                ProvenanceRecord::new(
                    at,
                    sender.clone(),
                    Operation::Send,
                    message.channel.clone(),
                    value.value.clone(),
                    value.provenance.clone(),
                )
            })
            .collect();
        let count = records.len();
        match self.engine.ingest_batch(records) {
            Ok(_) => self.recorded += count,
            Err(error) => self.error = Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AuditOutcome, AuditRequest};
    use piprov_core::name::Channel;
    use piprov_core::pattern::TrivialPatterns;
    use piprov_core::value::Value;
    use piprov_patterns::{GroupExpr, Pattern};
    use piprov_runtime::sim::{SimConfig, Simulation};
    use piprov_runtime::{workload, NetworkConfig};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-audit-rec-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recorder_streams_supply_chain_deliveries_into_the_engine() {
        let dir = temp_dir("chain");
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        engine.register_pattern(
            "from-supplier0",
            Pattern::originated_at(GroupExpr::single("supplier0")),
        );
        let system = workload::supply_chain(2, 2, 3);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                ..SimConfig::default()
            },
        );
        let mut recorder = AuditRecorder::new(Arc::clone(&engine));
        sim.run_with_sink(100_000, &mut recorder).unwrap();
        assert_eq!(recorder.recorded(), sim.metrics().messages_delivered);
        assert!(Arc::ptr_eq(recorder.engine(), &engine));
        let recorded = recorder.finish().unwrap();
        // 6 items delivered over 3 hops each (2 relays + sink lane).
        assert_eq!(recorded, 18);

        // The audit layer sees the simulated history: item0_0 originated
        // at supplier0 and passed through both relays.
        let item = Value::Channel(Channel::new("item0_0"));
        let vet = engine.handle(&AuditRequest::VetValue {
            value: item.clone(),
            pattern: "from-supplier0".into(),
        });
        assert!(matches!(
            vet.outcome,
            AuditOutcome::Vetted { verdict: true, .. }
        ));
        let origin = engine.handle(&AuditRequest::OriginOf { value: item });
        assert_eq!(
            origin.outcome,
            AuditOutcome::Origin {
                principal: Some(Principal::new("supplier0"))
            }
        );
        let touched = engine.handle(&AuditRequest::WhoTouched {
            principal: Principal::new("relay1"),
        });
        let AuditOutcome::Touched { values, .. } = touched.outcome else {
            panic!("expected touched");
        };
        assert_eq!(values.len(), 6, "relay1 touched every item");
        std::fs::remove_dir_all(&dir).ok();
    }
}
