//! The differential-audit harness: counterfactual answers must equal a
//! from-scratch engine that ingested the **literally filtered** history.
//!
//! Two complementary layers of evidence:
//!
//! * **Differential equivalence** (proptest) — for seeded random
//!   workloads with genuine spine sharing, `counterfactual(filter)` on a
//!   live engine must agree with a fresh engine whose every record had
//!   the filter applied to its top-level events before ingest: equal
//!   verdicts, equal sequences, equal watermarks.  The live engine is
//!   queried once **memo-cold** (first request after open) and once
//!   **memo-warm** (after vetting every value against every policy), and
//!   both answers must be byte-for-byte identical — memo reuse may only
//!   change work counters, never verdicts.
//! * **Witness-slice soundness** (deterministic) — every `Passed` why
//!   slice replayed *alone* re-vets as `Passed`; on small histories,
//!   dropping any single event from the slice breaks the verdict
//!   (minimality spot-check); blocked frontiers point at the earliest
//!   event where every candidate trail dies; deep shared spines prove
//!   `memo_reused` fires without changing the answer.

use piprov_audit::{
    AuditEngine, AuditOutcome, AuditRequest, CounterfactualVerdict, EventFilter, WhySlice,
};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Direction, Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::parse_pattern;
use piprov_store::{Operation, ProvenanceRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-differential-{}-{}-{}",
        std::process::id(),
        name,
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn value(i: usize) -> Value {
    Value::Channel(Channel::new(format!("item{}", i)))
}

/// The policies both engines carry; textual sources keep this aligned
/// with what a `.ppol` pack would install.
const POLICIES: &[(&str, &str)] = &[
    ("vendor", "p0!Any; Any"),
    ("either-vendor", "(p0 + p1)!Any; Any"),
    ("deep-origin", "Any; p0!Any"),
    ("received", "p2?Any; Any"),
];

fn register_policies(engine: &AuditEngine) {
    for (name, source) in POLICIES {
        engine.register_pattern(*name, parse_pattern(source).expect("policy source parses"));
    }
}

/// Applies `filter` to a record the way the oracle defines it: keep the
/// record, drop matching **top-level** events (channel provenances ride
/// along untouched), preserving order.
fn filtered_record(record: &ProvenanceRecord, filter: &EventFilter) -> ProvenanceRecord {
    let mut filtered = record.clone();
    filtered.sequence = 0;
    filtered.provenance = Provenance::from_events(
        record
            .provenance
            .to_vec()
            .into_iter()
            .filter(|event| !filter.removes(event)),
    );
    filtered
}

// ---------------------------------------------------------------------------
// Seeded random workloads with genuine sharing.
// ---------------------------------------------------------------------------

/// A workload: a pool of provenances grown by prepends (each step's
/// channel and tail drawn from the pool so far, so spines genuinely
/// share suffixes), and records that each pick one pool entry.
#[derive(Debug, Clone)]
struct Workload {
    records: Vec<ProvenanceRecord>,
}

fn build_workload(steps: &[(u8, bool, usize, usize)], picks: &[(usize, usize)]) -> Workload {
    let mut pool: Vec<Provenance> = vec![Provenance::empty()];
    for (principal, output, channel_pick, tail_pick) in steps {
        let channel = pool[channel_pick % pool.len()].clone();
        let tail = pool[tail_pick % pool.len()].clone();
        let principal = Principal::new(format!("p{}", principal % 5));
        let event = if *output {
            Event::output(principal, channel)
        } else {
            Event::input(principal, channel)
        };
        pool.push(tail.prepend(event));
    }
    let records = picks
        .iter()
        .map(|(value_pick, pool_pick)| {
            ProvenanceRecord::new(
                0,
                "writer",
                Operation::Send,
                "m",
                value(value_pick % 4),
                pool[pool_pick % pool.len()].clone(),
            )
        })
        .collect();
    Workload { records }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0u8..5, any::<bool>(), 0usize..24, 0usize..24), 1..24),
        proptest::collection::vec((0usize..4, 0usize..24), 1..10),
    )
        .prop_map(|(steps, picks)| build_workload(&steps, &picks))
}

fn arb_filter() -> impl Strategy<Value = EventFilter> {
    prop_oneof![
        (0u32..5).prop_map(|p| EventFilter::Principal(Principal::new(format!("p{}", p)))),
        prop_oneof![Just(Direction::Output), Just(Direction::Input)].prop_map(EventFilter::Kind),
        (0u32..5).prop_map(|p| EventFilter::ChannelVia(Principal::new(format!("p{}", p)))),
    ]
}

/// Unwraps a counterfactual outcome, or returns `None` for the
/// (legitimate) unknown-value answer when a workload never wrote the
/// probed value.
fn as_counterfactual(outcome: &AuditOutcome) -> Option<&CounterfactualVerdict> {
    match outcome {
        AuditOutcome::Counterfactual(verdict) => Some(verdict),
        AuditOutcome::UnknownValue => None,
        other => panic!("expected a counterfactual verdict, got {:?}", other),
    }
}

fn vet_verdict(outcome: &AuditOutcome) -> Option<(bool, u64)> {
    match outcome {
        AuditOutcome::Vetted { verdict, sequence } => Some((*verdict, *sequence)),
        AuditOutcome::UnknownValue => None,
        other => panic!("expected a vet verdict, got {:?}", other),
    }
}

proptest! {
    // 32 cases locally; PIPROV_PROPTEST_CASES raises it in the CI deep
    // run (512).
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property.  For every (workload, filter, value,
    /// policy): the live engine's counterfactual verdict equals a
    /// from-scratch engine ingesting the literally filtered history —
    /// same verdict, same sequence, same watermark — and the memo-cold
    /// and memo-warm answers are identical.
    #[test]
    fn counterfactual_equals_from_scratch_filtered_engine(
        workload in arb_workload(),
        filter in arb_filter(),
    ) {
        let live_dir = temp_dir("live");
        let live = AuditEngine::open(&live_dir).unwrap();
        register_policies(&live);
        live.ingest_batch(workload.records.clone()).unwrap();

        let scratch_dir = temp_dir("scratch");
        let scratch = AuditEngine::open(&scratch_dir).unwrap();
        register_policies(&scratch);
        scratch
            .ingest_batch(
                workload
                    .records
                    .iter()
                    .map(|r| filtered_record(r, &filter))
                    .collect(),
            )
            .unwrap();
        prop_assert_eq!(live.watermark(), scratch.watermark());

        for v in 0..4 {
            for (policy, _) in POLICIES {
                let request = AuditRequest::Counterfactual {
                    value: value(v),
                    pattern: (*policy).to_string(),
                    remove: filter.clone(),
                };
                // Memo-cold: the engine's very first query for this
                // (value, policy) pair after open.
                let cold = live.handle(&request);
                // Warm the memo through the ordinary vet path, then ask
                // again: the answer must not move.
                let original_vet = live.handle(&AuditRequest::VetValue {
                    value: value(v),
                    pattern: (*policy).to_string(),
                });
                let warm = live.handle(&request);
                prop_assert_eq!(&cold.outcome, &warm.outcome,
                    "memo warmth changed a counterfactual answer");
                prop_assert_eq!(cold.watermark, warm.watermark);

                let scratch_vet = scratch.handle(&AuditRequest::VetValue {
                    value: value(v),
                    pattern: (*policy).to_string(),
                });
                prop_assert_eq!(warm.watermark, scratch_vet.watermark);

                match as_counterfactual(&warm.outcome) {
                    None => {
                        // Value never written: the scratch engine must
                        // agree it is unknown.
                        prop_assert_eq!(vet_verdict(&scratch_vet.outcome), None);
                    }
                    Some(verdict) => {
                        // The original side must match the live vet.
                        let (live_verdict, live_seq) =
                            vet_verdict(&original_vet.outcome).expect("value is known");
                        prop_assert_eq!(verdict.original, live_verdict);
                        prop_assert_eq!(verdict.sequence, live_seq);
                        // The counterfactual side must match the
                        // from-scratch engine byte for byte.
                        let (scratch_verdict, scratch_seq) =
                            vet_verdict(&scratch_vet.outcome).expect("records survive filtering");
                        prop_assert_eq!(
                            verdict.counterfactual, scratch_verdict,
                            "counterfactual diverges from the literally filtered engine"
                        );
                        prop_assert_eq!(verdict.sequence, scratch_seq);
                        // Every reported removed event matches the
                        // filter; their count is the oracle's count on
                        // the newest record for the value.
                        for removed in &verdict.removed {
                            prop_assert!(filter.removes(&removed.event));
                        }
                        let newest = workload
                            .records
                            .iter()
                            .rev()
                            .find(|r| r.value == value(v))
                            .expect("value is known");
                        let expected_removed = newest
                            .provenance
                            .to_vec()
                            .iter()
                            .filter(|event| filter.removes(event))
                            .count();
                        prop_assert_eq!(verdict.removed.len(), expected_removed);
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&live_dir);
        let _ = std::fs::remove_dir_all(&scratch_dir);
    }

    /// Why-slice soundness over random workloads: every `Passed` slice,
    /// replayed alone into a fresh engine, re-vets as `Passed`.
    #[test]
    fn passed_why_slices_replay_alone_as_passed(workload in arb_workload()) {
        let live_dir = temp_dir("why-live");
        let live = AuditEngine::open(&live_dir).unwrap();
        register_policies(&live);
        live.ingest_batch(workload.records.clone()).unwrap();

        let replay_dir = temp_dir("why-replay");
        let replay = AuditEngine::open(&replay_dir).unwrap();
        register_policies(&replay);

        for v in 0..4 {
            for (policy, _) in POLICIES {
                let response = live.handle(&AuditRequest::Why {
                    value: value(v),
                    pattern: (*policy).to_string(),
                });
                let slice = match &response.outcome {
                    AuditOutcome::Why(slice) => slice,
                    AuditOutcome::UnknownValue => continue,
                    other => panic!("expected a why slice, got {:?}", other),
                };
                if !slice.verdict {
                    continue;
                }
                // Rebuild a provenance from nothing but the slice's
                // events (they arrive most-recent-first, the order
                // `from_events` takes) and vet it in a fresh engine.
                let witness = Provenance::from_events(
                    slice.events.iter().map(|w| w.event.clone()),
                );
                let probe = Value::Channel(Channel::new(format!(
                    "witness-{}-{}", v, policy
                )));
                replay
                    .ingest(ProvenanceRecord::new(
                        0,
                        "replayer",
                        Operation::Send,
                        "m",
                        probe.clone(),
                        witness,
                    ))
                    .unwrap();
                let revet = replay.handle(&AuditRequest::VetValue {
                    value: probe,
                    pattern: (*policy).to_string(),
                });
                match revet.outcome {
                    AuditOutcome::Vetted { verdict, .. } => prop_assert!(
                        verdict,
                        "a Passed why slice failed when replayed alone"
                    ),
                    other => panic!("expected a verdict, got {:?}", other),
                }
            }
        }
        let _ = std::fs::remove_dir_all(&live_dir);
        let _ = std::fs::remove_dir_all(&replay_dir);
    }
}

// ---------------------------------------------------------------------------
// Deterministic witness-slice checks on small histories.
// ---------------------------------------------------------------------------

fn event(principal: &str, direction: Direction) -> Event {
    match direction {
        Direction::Output => Event::output(Principal::new(principal), Provenance::empty()),
        Direction::Input => Event::input(Principal::new(principal), Provenance::empty()),
    }
}

/// Opens an engine over a two-step policy and one record per probe
/// provenance, newest-first event lists.
fn engine_with(name: &str, records: &[(&str, Vec<Event>)]) -> (AuditEngine, PathBuf) {
    let dir = temp_dir(name);
    let engine = AuditEngine::open(&dir).unwrap();
    engine.register_pattern(
        "two-step",
        parse_pattern("p0!Any; p1!Any").expect("two-step parses"),
    );
    register_policies(&engine);
    for (value_name, events) in records {
        engine
            .ingest(ProvenanceRecord::new(
                0,
                "writer",
                Operation::Send,
                "m",
                Value::Channel(Channel::new(*value_name)),
                Provenance::from_events(events.iter().cloned()),
            ))
            .unwrap();
    }
    (engine, dir)
}

fn why(engine: &AuditEngine, value_name: &str, policy: &str) -> WhySlice {
    let response = engine.handle(&AuditRequest::Why {
        value: Value::Channel(Channel::new(value_name)),
        pattern: policy.to_string(),
    });
    match response.outcome {
        AuditOutcome::Why(slice) => slice,
        other => panic!("expected a why slice, got {:?}", other),
    }
}

fn vet(engine: &AuditEngine, value_name: &str, policy: &str) -> bool {
    let response = engine.handle(&AuditRequest::VetValue {
        value: Value::Channel(Channel::new(value_name)),
        pattern: policy.to_string(),
    });
    match response.outcome {
        AuditOutcome::Vetted { verdict, .. } => verdict,
        other => panic!("expected a verdict, got {:?}", other),
    }
}

/// Minimality spot-check: on a history where every event carries the
/// two-step pattern, dropping **any** single event from the passed slice
/// flips the verdict.
#[test]
fn dropping_any_single_event_from_a_passed_slice_breaks_it() {
    let full = vec![
        event("p0", Direction::Output),
        event("p1", Direction::Output),
    ];
    let mut records = vec![("full", full.clone())];
    for drop in 0..full.len() {
        let mut events = full.clone();
        events.remove(drop);
        records.push((["drop0", "drop1"][drop], events));
    }
    let (engine, dir) = engine_with("minimality", &records);

    let slice = why(&engine, "full", "two-step");
    assert!(slice.verdict, "the full history passes");
    assert_eq!(slice.blocked, None);
    assert_eq!(slice.events.len(), 2, "the slice is the whole spine");

    assert!(
        !vet(&engine, "drop0", "two-step"),
        "slice minus event 0 fails"
    );
    assert!(
        !vet(&engine, "drop1", "two-step"),
        "slice minus event 1 fails"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Blocked frontiers: the slice points at the **earliest** event where
/// every candidate trail dies — immediately (index 0) when the newest
/// event already mismatches, later when a prefix was consumable.
#[test]
fn blocked_frontier_is_the_earliest_death() {
    let records = vec![
        (
            "dies-late",
            vec![
                event("p0", Direction::Output),
                event("p1", Direction::Output),
                event("p2", Direction::Output),
            ],
        ),
        ("dies-immediately", vec![event("p3", Direction::Output)]),
        ("exhausts", vec![event("p0", Direction::Output)]),
    ];
    let (engine, dir) = engine_with("frontier", &records);

    // Two events consume, the third finds no transition: blocked at 2.
    let slice = why(&engine, "dies-late", "two-step");
    assert!(!slice.verdict);
    assert_eq!(slice.blocked, Some(2));
    assert_eq!(slice.events.len(), 3, "two consumed plus the blocker");

    // The newest event already mismatches: blocked at 0.
    let slice = why(&engine, "dies-immediately", "two-step");
    assert!(!slice.verdict);
    assert_eq!(slice.blocked, Some(0));
    assert_eq!(slice.events.len(), 1);

    // The spine ends while the pattern still wants more: no blocker,
    // the whole (consumed) history is the explanation.
    let slice = why(&engine, "exhausts", "two-step");
    assert!(!slice.verdict);
    assert_eq!(slice.blocked, None);
    assert_eq!(slice.events.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deep shared spines: a counterfactual that removes one near-top event
/// re-uses the original walk's memoized suffix verdicts — `memo_reused`
/// fires, the filtered walk visits a handful of nodes instead of the
/// whole spine, and the verdict still matches the from-scratch oracle.
#[test]
fn counterfactual_reuses_memoized_suffixes_on_deep_spines() {
    const DEPTH: usize = 64;
    // Newest-first: [p0! , drop? , relay? × DEPTH].  The `vendor`
    // policy (p0!Any; Any) passes, and removing `drop` keeps it passing
    // through a spine whose suffix is shared with the original.
    let mut events = vec![
        event("p0", Direction::Output),
        event("drop", Direction::Input),
    ];
    events.extend((0..DEPTH).map(|_| event("relay", Direction::Input)));
    let (engine, dir) = engine_with("deep", &[("deep", events)]);

    let response = engine.handle(&AuditRequest::Counterfactual {
        value: Value::Channel(Channel::new("deep")),
        pattern: "vendor".to_string(),
        remove: EventFilter::Principal(Principal::new("drop")),
    });
    let verdict = match &response.outcome {
        AuditOutcome::Counterfactual(verdict) => verdict,
        other => panic!("expected a counterfactual verdict, got {:?}", other),
    };
    assert!(verdict.original, "the full spine passes vendor");
    assert!(
        verdict.counterfactual,
        "removing the relay hop keeps it passing"
    );
    assert!(!verdict.flipped());
    assert_eq!(verdict.removed.len(), 1);

    // The original walk visits the whole spine (DEPTH + 2 nodes); the
    // filtered walk re-prepends one event and then hits the memoized
    // shared suffix instead of re-walking it.
    assert!(
        response.stats.memo_reused >= 1,
        "the filtered walk must reuse the original's memoized suffix: {:?}",
        response.stats
    );
    assert!(
        response.stats.dag_nodes_visited <= DEPTH + 2 + 4,
        "the filtered walk must not re-walk the shared suffix: {:?}",
        response.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}
