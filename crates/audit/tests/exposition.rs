//! Drift guard for the Prometheus exposition: every stats field the
//! engine exports must surface in the rendered text, in the
//! `EngineStats` `Display`, and stay renderable/lintable as the structs
//! grow.
//!
//! The guard is two-layered:
//!
//! * **compile-time** — this test (like the renderer, the `Display`
//!   impl, and the wire codec) destructures every stats struct
//!   *exhaustively*, with no `..` rest pattern: adding a field to any of
//!   them breaks the build here until the exposition is taught about it;
//! * **run-time** — each field carries a unique sentinel value and the
//!   test asserts that sentinel appears as a sample value (or label) in
//!   the rendered text, so a field that compiles but is silently dropped
//!   from the output still fails.

use piprov_audit::{
    render_exposition, render_exposition_with, validate_exposition, EngineStats, Exemplar,
    ExpositionOptions, HistogramSnapshot, MetricsSnapshot, PolicySnapshot,
    LATENCY_BUCKET_BOUNDS_NS,
};
use piprov_core::provenance::{InternerStats, ShardStats};
use piprov_patterns::MemoStats;
use piprov_store::StoreStats;

/// Hands out unique, recognisable sentinel values: no two fields share
/// one, so a transposed pair of fields fails the run-time check too.
struct Sentinels(u64);

impl Sentinels {
    fn next(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }
    fn next_usize(&mut self) -> usize {
        self.next() as usize
    }
}

fn sentinel_snapshot() -> (MetricsSnapshot, Vec<u64>) {
    let mut s = Sentinels(9_000_000);
    let mut plain = Vec::new();
    let mut take = |s: &mut Sentinels| {
        let v = s.next();
        plain.push(v);
        v
    };

    let engine = EngineStats {
        requests: take(&mut s),
        ingested: take(&mut s),
        vets_passed: take(&mut s),
        vets_failed: take(&mut s),
        index_hits: take(&mut s),
        memo_hits: take(&mut s),
        ingest_batches: take(&mut s),
        busy_rejections: take(&mut s),
        queue_depth: take(&mut s),
        snapshots_published: take(&mut s),
        snapshot_lag: take(&mut s),
        watermark: take(&mut s),
    };
    let store = StoreStats {
        records: take(&mut s) as usize,
        segments: take(&mut s) as usize,
        bytes: take(&mut s) as usize,
    };
    let interner = InternerStats {
        interned_nodes: take(&mut s) as usize,
        hits: take(&mut s),
        misses: take(&mut s),
        shards: take(&mut s) as usize,
    };
    // The shard index surfaces as a label, not a sample — tracked apart.
    let shard = ShardStats {
        shard: s.next_usize(),
        entries: take(&mut s) as usize,
        hits: take(&mut s),
        misses: take(&mut s),
    };
    let memo = MemoStats {
        entries: take(&mut s) as usize,
        bound: take(&mut s) as usize,
        epochs: take(&mut s),
        hits: take(&mut s),
        misses: take(&mut s),
        retained: take(&mut s),
    };
    let vets_unknown_pattern = take(&mut s);
    // Histogram fields surface transformed (cumulative buckets, seconds
    // sum), so they are asserted structurally, not by raw sentinel.
    let latency = HistogramSnapshot {
        counts: (1..=LATENCY_BUCKET_BOUNDS_NS.len() as u64).collect(),
        overflow: 3,
        sum_ns: 1_234_567_890,
        count: (1..=LATENCY_BUCKET_BOUNDS_NS.len() as u64).sum::<u64>() + 3,
        exemplars: Vec::new(),
    };
    let policy = PolicySnapshot {
        policy: "sentinel-policy".into(),
        memo,
        vets_passed: take(&mut s),
        vets_failed: take(&mut s),
        vets_unknown_value: take(&mut s),
        counterfactuals: take(&mut s),
        counterfactual_flips: take(&mut s),
        latency,
    };
    // The wire-level histograms are label-free registry singletons; like
    // the per-policy latency they are asserted structurally below.
    let frame_decode = HistogramSnapshot {
        counts: vec![2; LATENCY_BUCKET_BOUNDS_NS.len()],
        overflow: 1,
        sum_ns: 2_000_000_000,
        count: 2 * LATENCY_BUCKET_BOUNDS_NS.len() as u64 + 1,
        exemplars: Vec::new(),
    };
    let request_service = HistogramSnapshot {
        counts: vec![5; LATENCY_BUCKET_BOUNDS_NS.len()],
        overflow: 0,
        sum_ns: 3_000_000_000,
        count: 5 * LATENCY_BUCKET_BOUNDS_NS.len() as u64,
        exemplars: Vec::new(),
    };
    let ingest_queue_wait = HistogramSnapshot {
        counts: vec![7; LATENCY_BUCKET_BOUNDS_NS.len()],
        overflow: 2,
        sum_ns: 4_000_000_000,
        count: 7 * LATENCY_BUCKET_BOUNDS_NS.len() as u64 + 2,
        exemplars: Vec::new(),
    };
    let snapshot = MetricsSnapshot {
        engine,
        store,
        interner,
        interner_shards: vec![shard],
        vets_unknown_pattern,
        frame_decode,
        request_service,
        ingest_queue_wait,
        uptime_seconds: take(&mut s),
        connections_accepted: take(&mut s),
        connections_closed: take(&mut s),
        open_connections: take(&mut s),
        policies: vec![policy],
    };
    (snapshot, plain)
}

#[test]
fn every_stats_field_surfaces_in_the_exposition() {
    let (snapshot, sentinels) = sentinel_snapshot();
    let text = render_exposition(&snapshot);
    validate_exposition(&text).expect("sentinel exposition lints clean");

    for sentinel in &sentinels {
        assert!(
            text.contains(&format!(" {}\n", sentinel)),
            "sentinel {} (a stats field) is missing from the exposition:\n{}",
            sentinel,
            text
        );
    }
    // No two plain fields shared a sentinel, so N fields ⇒ N values.
    assert_eq!(
        sentinels.len(),
        12 + 3 + 4 + 3 + 6 + 1 + 5 + 4,
        "engine + store + interner + shard(values) + memo + unknown-pattern \
         + policy verdicts/counterfactuals + serving lifecycle"
    );
    // The shard index rides as a label.
    assert!(text.contains("piprov_interner_shard_entries{shard=\"9000020\"}"));

    // Histogram: one bucket line per bound plus +Inf, cumulative counts,
    // an exact-decimal seconds sum, and a matching count.
    let policy = &snapshot.policies[0];
    let bucket_lines = text
        .lines()
        .filter(|l| l.starts_with("piprov_vet_latency_seconds_bucket{"))
        .count();
    assert_eq!(bucket_lines, LATENCY_BUCKET_BOUNDS_NS.len() + 1);
    assert!(text.contains(&format!(
        "piprov_vet_latency_seconds_bucket{{policy=\"sentinel-policy\",le=\"+Inf\"}} {}\n",
        policy.latency.count
    )));
    assert!(
        text.contains("piprov_vet_latency_seconds_sum{policy=\"sentinel-policy\"} 1.23456789\n")
    );
    assert!(text.contains(&format!(
        "piprov_vet_latency_seconds_count{{policy=\"sentinel-policy\"}} {}\n",
        policy.latency.count
    )));

    // The three wire-level histograms render label-free with the same
    // bucket schedule; each is pinned by its +Inf/count pair so a
    // transposed pair of histograms fails too.
    for (family, histogram) in [
        ("piprov_frame_decode_seconds", &snapshot.frame_decode),
        ("piprov_request_service_seconds", &snapshot.request_service),
        (
            "piprov_ingest_queue_wait_seconds",
            &snapshot.ingest_queue_wait,
        ),
    ] {
        let bucket_lines = text
            .lines()
            .filter(|l| l.starts_with(&format!("{}_bucket{{", family)))
            .count();
        assert_eq!(
            bucket_lines,
            LATENCY_BUCKET_BOUNDS_NS.len() + 1,
            "{}",
            family
        );
        assert!(text.contains(&format!(
            "{}_bucket{{le=\"+Inf\"}} {}\n",
            family, histogram.count
        )));
        assert!(text.contains(&format!("{}_count {}\n", family, histogram.count)));
    }
    assert!(text.contains("piprov_frame_decode_seconds_sum 2.0\n"));
    assert!(text.contains("piprov_request_service_seconds_sum 3.0\n"));
    assert!(text.contains("piprov_ingest_queue_wait_seconds_sum 4.0\n"));
}

#[test]
fn engine_stats_display_names_every_field() {
    let (snapshot, _) = sentinel_snapshot();
    // Exhaustive destructure: a new EngineStats field breaks this test at
    // compile time until Display (checked below) and the exposition
    // (checked above) learn about it.
    let EngineStats {
        requests,
        ingested,
        vets_passed,
        vets_failed,
        index_hits,
        memo_hits,
        ingest_batches,
        busy_rejections,
        queue_depth,
        snapshots_published,
        snapshot_lag,
        watermark,
    } = snapshot.engine;
    let rendered = snapshot.engine.to_string();
    for (name, value) in [
        ("requests", requests),
        ("ingested", ingested),
        ("vets_passed", vets_passed),
        ("vets_failed", vets_failed),
        ("index_hits", index_hits),
        ("memo_hits", memo_hits),
        ("ingest_batches", ingest_batches),
        ("busy_rejections", busy_rejections),
        ("queue_depth", queue_depth),
        ("snapshots_published", snapshots_published),
        ("snapshot_lag", snapshot_lag),
        ("watermark", watermark),
    ] {
        assert!(
            rendered.contains(&value.to_string()),
            "EngineStats Display dropped {} ({}): {}",
            name,
            value,
            rendered
        );
    }
}

#[test]
fn the_exposition_golden_shape_is_stable() {
    // Not a byte-for-byte golden (that would churn on every new metric);
    // instead the *contract* pieces scrapers depend on are pinned: every
    // family announced before sampled, `# TYPE` kinds, stable names.
    let (snapshot, _) = sentinel_snapshot();
    let text = render_exposition(&snapshot);
    for family in [
        "piprov_requests_total",
        "piprov_ingested_total",
        "piprov_vets_passed_total",
        "piprov_vets_failed_total",
        "piprov_vets_unknown_pattern_total",
        "piprov_index_hits_total",
        "piprov_memo_hits_total",
        "piprov_ingest_batches_total",
        "piprov_busy_rejections_total",
        "piprov_queue_depth",
        "piprov_snapshots_published_total",
        "piprov_snapshot_lag",
        "piprov_watermark",
        "piprov_store_records",
        "piprov_store_segments",
        "piprov_store_bytes",
        "piprov_interner_nodes",
        "piprov_interner_hits_total",
        "piprov_interner_misses_total",
        "piprov_interner_shards",
        "piprov_interner_shard_entries",
        "piprov_interner_shard_hits_total",
        "piprov_interner_shard_misses_total",
        "piprov_policy_vets_passed_total",
        "piprov_policy_vets_failed_total",
        "piprov_policy_vets_unknown_value_total",
        "piprov_policy_memo_entries",
        "piprov_policy_memo_bound",
        "piprov_policy_memo_epochs_total",
        "piprov_policy_memo_hits_total",
        "piprov_policy_memo_misses_total",
        "piprov_policy_memo_retained_total",
        "piprov_vet_latency_seconds",
        "piprov_frame_decode_seconds",
        "piprov_request_service_seconds",
        "piprov_ingest_queue_wait_seconds",
        "piprov_uptime_seconds",
        "piprov_connections_accepted_total",
        "piprov_connections_closed_total",
        "piprov_open_connections",
    ] {
        assert!(
            text.contains(&format!("# TYPE {} ", family)),
            "family {} lost its TYPE line",
            family
        );
        let type_at = text
            .find(&format!("# TYPE {} ", family))
            .expect("asserted above");
        let sample_at = text
            .find(&format!("\n{}", family))
            .unwrap_or_else(|| panic!("family {} has no sample", family));
        assert!(
            type_at < sample_at,
            "family {} sampled before announced",
            family
        );
    }
    // Counters end in _total; gauges and histograms don't lie about it.
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let mut parts = line.split_whitespace().skip(2);
        let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
        match kind {
            "counter" => assert!(
                name.ends_with("_total"),
                "counter {} should end in _total",
                name
            ),
            "gauge" => assert!(!name.ends_with("_total"), "gauge {} ends in _total", name),
            "histogram" => assert!(
                [
                    "piprov_vet_latency_seconds",
                    "piprov_frame_decode_seconds",
                    "piprov_request_service_seconds",
                    "piprov_ingest_queue_wait_seconds",
                ]
                .contains(&name),
                "unexpected histogram family {}",
                name
            ),
            other => panic!("unexpected metric kind {} for {}", other, name),
        }
    }
}

#[test]
fn an_empty_registry_renders_a_lintable_exposition() {
    let snapshot = MetricsSnapshot {
        engine: EngineStats::default(),
        store: StoreStats::default(),
        interner: InternerStats {
            interned_nodes: 0,
            hits: 0,
            misses: 0,
            shards: 0,
        },
        interner_shards: Vec::new(),
        vets_unknown_pattern: 0,
        frame_decode: HistogramSnapshot::default(),
        request_service: HistogramSnapshot::default(),
        ingest_queue_wait: HistogramSnapshot::default(),
        uptime_seconds: 0,
        connections_accepted: 0,
        connections_closed: 0,
        open_connections: 0,
        policies: Vec::new(),
    };
    let text = render_exposition(&snapshot);
    validate_exposition(&text).expect("empty exposition lints clean");
    assert!(text.contains("piprov_requests_total 0\n"));
    assert!(
        !text.contains("piprov_policy_vets_passed_total{"),
        "no policies ⇒ no per-policy samples"
    );
}

#[test]
fn exemplars_are_opt_in_and_keep_the_exposition_lintable() {
    let (mut snapshot, _) = sentinel_snapshot();
    snapshot.frame_decode.exemplars = vec![None; LATENCY_BUCKET_BOUNDS_NS.len()];
    snapshot.frame_decode.exemplars[0] = Some(Exemplar {
        trace_id: 0xfeed_beef_dead_cafe_0123_4567_89ab_cdef,
        value_ns: 750,
    });

    let plain = render_exposition(&snapshot);
    validate_exposition(&plain).expect("plain exposition lints clean");
    assert!(
        !plain.contains(" # {"),
        "exemplars must stay off the default rendering"
    );

    let annotated = render_exposition_with(&snapshot, &ExpositionOptions { exemplars: true });
    validate_exposition(&annotated).expect("exemplar exposition lints clean");
    let line = annotated
        .lines()
        .find(|l| l.contains(" # {trace_id="))
        .expect("an exemplar-annotated bucket line");
    assert!(
        line.starts_with("piprov_frame_decode_seconds_bucket{"),
        "exemplars ride only on bucket samples: {}",
        line
    );
    assert!(
        line.contains("trace_id=\"feedbeefdeadcafe0123456789abcdef\""),
        "exemplar trace id renders as 32 hex digits: {}",
        line
    );
}
