//! The MVCC concurrency harness: machine-checked evidence that snapshot
//! reads are consistent.
//!
//! Two complementary attacks on the engine's consistency contract:
//!
//! * **Seeded interleavings** — a driver thread steps ingest batches
//!   through the bounded [`IngestQueue`] at controlled pause points (the
//!   `set_paused` hook), while ≥ 4 auditor threads hammer all four request
//!   kinds.  The workload is structured so every legal response is
//!   computable from the watermark alone: each batch carries exactly one
//!   record per value, so **batch atomicity** means every observed
//!   watermark is a batch boundary and every trail holds *exactly* the
//!   records at or below it — a torn read (a trail mentioning a record
//!   above its watermark, or a partial batch) fails loudly.  Per-thread
//!   **watermark monotonicity** is asserted on every response.  A seeded
//!   RNG decides how long auditors observe each paused state, so reruns
//!   explore different interleavings deterministically (CI repeats the
//!   suite 25×).
//! * **Prefix equivalence** (proptest) — a snapshot pinned at watermark
//!   `k` must answer every request *identically* to a fresh engine that
//!   ingested only records `..=k`, even after the original engine has
//!   ingested far past `k`.

use piprov_audit::{
    AuditEngine, AuditOutcome, AuditRequest, AuditResponse, EngineSnapshot, IngestQueue,
};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_patterns::{GroupExpr, Pattern};
use piprov_store::{Operation, ProvenanceRecord, SequenceNumber};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-mvcc-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn value(name: &str) -> Value {
    Value::Channel(Channel::new(name))
}

// ---------------------------------------------------------------------------
// Seeded interleavings.
// ---------------------------------------------------------------------------

/// Values per batch; every batch carries exactly one record per value, so
/// the only legal watermarks are multiples of `VALUES`.
const VALUES: u64 = 6;
const BATCHES: u64 = 20;
const AUDITORS: usize = 4;

fn supplier(v: u64) -> String {
    format!("s{}", v % 3)
}

/// The record batch `b` carries for value `v`.  Appended in value order,
/// so its sequence number is `b * VALUES + v + 1`.
fn workload_record(b: u64, v: u64) -> ProvenanceRecord {
    let origin = Principal::new(supplier(v));
    let k = Provenance::single(Event::output(origin.clone(), Provenance::empty()))
        .prepend(Event::input(Principal::new("relay"), Provenance::empty()));
    ProvenanceRecord::new(
        b * VALUES + v,
        origin,
        Operation::Send,
        "m",
        value(&format!("item{}", v)),
        k,
    )
}

/// Asserts that `response` is fully explained by its own watermark: the
/// prefix of exactly `watermark / VALUES` whole batches, nothing more and
/// nothing less.
fn check_explained_by_watermark(
    request: &AuditRequest,
    response: &AuditResponse,
    last_watermark: &mut SequenceNumber,
) {
    let w = response.watermark;
    assert_eq!(
        w % VALUES,
        0,
        "watermark {} is not a batch boundary: a partially applied batch \
         was published",
        w
    );
    assert!(
        w >= *last_watermark,
        "watermark went backwards: {} after {}",
        w,
        *last_watermark
    );
    *last_watermark = w;
    let visible_batches = w / VALUES;
    match request {
        AuditRequest::AuditTrail { value } => {
            let v: u64 = value
                .to_string()
                .trim_start_matches("item")
                .parse()
                .expect("workload value name");
            if visible_batches == 0 {
                assert_eq!(response.outcome, AuditOutcome::UnknownValue);
                return;
            }
            let AuditOutcome::Trail(trail) = &response.outcome else {
                panic!("expected a trail, got {:?}", response.outcome);
            };
            let got: Vec<SequenceNumber> = trail.records.iter().map(|r| r.sequence).collect();
            let expected: Vec<SequenceNumber> =
                (0..visible_batches).map(|b| b * VALUES + v + 1).collect();
            assert_eq!(
                got, expected,
                "trail at watermark {} must hold exactly the value's records \
                 at or below it",
                w
            );
        }
        AuditRequest::VetValue { value, .. } => {
            let v: u64 = value
                .to_string()
                .trim_start_matches("item")
                .parse()
                .expect("workload value name");
            if visible_batches == 0 {
                assert_eq!(response.outcome, AuditOutcome::UnknownValue);
                return;
            }
            let newest = (visible_batches - 1) * VALUES + v + 1;
            match response.outcome {
                AuditOutcome::Vetted { verdict, sequence } => {
                    assert!(verdict, "every workload record originates at a supplier");
                    assert_eq!(
                        sequence, newest,
                        "vet at watermark {} must use the newest visible record",
                        w
                    );
                }
                ref other => panic!("expected a verdict, got {:?}", other),
            }
        }
        AuditRequest::WhoTouched { .. } => {
            // The relay appears in every record's history.
            let AuditOutcome::Touched { records, values } = &response.outcome else {
                panic!("expected touched, got {:?}", response.outcome);
            };
            let expected: Vec<SequenceNumber> = (1..=w).collect();
            assert_eq!(
                records, &expected,
                "touched at watermark {} must list exactly the visible records",
                w
            );
            let expected_values = if w == 0 { 0 } else { VALUES as usize };
            assert_eq!(values.len(), expected_values);
        }
        AuditRequest::OriginOf { value } => {
            let v: u64 = value
                .to_string()
                .trim_start_matches("item")
                .parse()
                .expect("workload value name");
            if visible_batches == 0 {
                assert_eq!(response.outcome, AuditOutcome::UnknownValue);
                return;
            }
            assert_eq!(
                response.outcome,
                AuditOutcome::Origin {
                    principal: Some(Principal::new(supplier(v)))
                }
            );
        }
        AuditRequest::Why { .. } | AuditRequest::Counterfactual { .. } => {
            unreachable!("the MVCC workload issues no causal queries")
        }
    }
}

/// One auditor thread: seeded request stream, every response checked
/// against the watermark it claims, watermarks monotone.
fn auditor_loop(
    engine: &AuditEngine,
    seed: u64,
    stop: &AtomicBool,
    queries_served: &AtomicU64,
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut last_watermark = 0;
    let mut served = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let v = rng.gen_range(0..VALUES);
        let request = match rng.gen_range(0u32..4) {
            0 => AuditRequest::AuditTrail {
                value: value(&format!("item{}", v)),
            },
            1 => AuditRequest::VetValue {
                value: value(&format!("item{}", v)),
                pattern: "origin-supplier".into(),
            },
            2 => AuditRequest::WhoTouched {
                principal: Principal::new("relay"),
            },
            _ => AuditRequest::OriginOf {
                value: value(&format!("item{}", v)),
            },
        };
        let response = engine.handle(&request);
        check_explained_by_watermark(&request, &response, &mut last_watermark);
        served += 1;
        queries_served.fetch_add(1, Ordering::Relaxed);
    }
    served
}

fn run_seeded_interleaving(seed: u64) {
    let dir = temp_dir(&format!("interleave-{}", seed));
    let engine = Arc::new(AuditEngine::open(&dir).unwrap());
    engine.register_pattern(
        "origin-supplier",
        Pattern::originated_at(GroupExpr::any_of(["s0", "s1", "s2"])),
    );
    let queue = IngestQueue::start(Arc::clone(&engine), 2);
    queue.set_paused(true);
    let stop = AtomicBool::new(false);
    let queries_served = AtomicU64::new(0);

    thread::scope(|scope| {
        let auditors: Vec<_> = (0..AUDITORS)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let stop = &stop;
                let queries_served = &queries_served;
                scope.spawn(move || {
                    auditor_loop(&engine, seed ^ (t as u64) << 32, stop, queries_served)
                })
            })
            .collect();

        // The driver: a seeded scheduler.  For each batch it (1) lets the
        // auditors observe the *pre-batch* state for an RNG-chosen number
        // of queries, (2) releases the worker to apply exactly this batch,
        // (3) re-pauses at the next boundary.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        for b in 0..BATCHES {
            let batch: Vec<ProvenanceRecord> = (0..VALUES).map(|v| workload_record(b, v)).collect();
            assert!(
                queue.try_submit(batch).is_accepted(),
                "the driver never outruns a 2-deep queue"
            );
            let observe = rng.gen_range(0u64..64);
            let target = queries_served.load(Ordering::Relaxed) + observe;
            while queries_served.load(Ordering::Relaxed) < target {
                thread::yield_now();
            }
            queue.set_paused(false);
            // The pause point: wait for this batch's single publication.
            while engine.watermark() < (b + 1) * VALUES {
                thread::yield_now();
            }
            queue.set_paused(true);
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = auditors.into_iter().map(|a| a.join().unwrap()).sum();
        assert!(total > 0, "the auditors audited");
    });

    queue.shutdown().unwrap();
    // Final state: everything visible, watermark at the last boundary.
    assert_eq!(engine.watermark(), BATCHES * VALUES);
    assert_eq!(engine.record_count(), (BATCHES * VALUES) as usize);
    let stats = engine.stats();
    assert_eq!(stats.ingested, BATCHES * VALUES);
    assert_eq!(
        stats.snapshots_published, BATCHES,
        "exactly one publication per batch"
    );
    assert_eq!(stats.snapshot_lag, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_interleaving_proves_batch_atomicity_and_monotone_watermarks() {
    // Three deterministic interleavings per run; CI additionally repeats
    // the whole suite 25× to shake out scheduler-dependent regressions.
    for seed in [0xC0FFEE, 7, 9_2026] {
        run_seeded_interleaving(seed);
    }
}

// ---------------------------------------------------------------------------
// Deterministic gauge and pinning checks.
// ---------------------------------------------------------------------------

#[test]
fn snapshot_lag_counts_accepted_but_unpublished_batches() {
    let dir = temp_dir("lag");
    let engine = Arc::new(AuditEngine::open(&dir).unwrap());
    let queue = IngestQueue::start(Arc::clone(&engine), 4);
    queue.set_paused(true);
    for b in 0..3u64 {
        let batch: Vec<ProvenanceRecord> = (0..VALUES).map(|v| workload_record(b, v)).collect();
        assert!(queue.try_submit(batch).is_accepted());
    }
    let stats = engine.stats();
    assert_eq!(stats.queue_depth, 3);
    assert_eq!(
        stats.snapshot_lag, 3,
        "three accepted batches are invisible to readers"
    );
    assert_eq!(stats.watermark, 0, "nothing published while paused");
    queue.flush().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.snapshot_lag, 0, "the drain caught readers up");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.watermark, 3 * VALUES);
    assert_eq!(stats.snapshots_published, 3);
    queue.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_pinned_snapshot_survives_the_engine_moving_on() {
    let dir = temp_dir("pin");
    let engine = AuditEngine::open(&dir).unwrap();
    engine
        .ingest_batch((0..VALUES).map(|v| workload_record(0, v)).collect())
        .unwrap();
    let pinned = engine.snapshot();
    for b in 1..5u64 {
        engine
            .ingest_batch((0..VALUES).map(|v| workload_record(b, v)).collect())
            .unwrap();
    }
    // Every request kind, re-asked of the pinned snapshot, answers the
    // old state exactly.
    let mut last;
    for request in [
        AuditRequest::AuditTrail {
            value: value("item0"),
        },
        AuditRequest::WhoTouched {
            principal: Principal::new("relay"),
        },
        AuditRequest::OriginOf {
            value: value("item3"),
        },
    ] {
        let response = engine.handle_at(&pinned, &request);
        assert_eq!(response.watermark, VALUES);
        last = 0; // pinned responses all sit at the same watermark
        check_explained_by_watermark(&request, &response, &mut last);
    }
    assert_eq!(engine.watermark(), 5 * VALUES);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Prefix equivalence (proptest).
// ---------------------------------------------------------------------------

/// One generated ingest step: which value, which supplier, how much relay
/// history.
fn arb_steps() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..5, 0u8..4, 0u8..4), 1..32)
}

fn step_record(t: u64, step: (u8, u8, u8)) -> ProvenanceRecord {
    let (v, s, depth) = step;
    let origin = Principal::new(format!("s{}", s));
    let mut k = Provenance::single(Event::output(origin.clone(), Provenance::empty()));
    for d in 0..depth {
        k = k.prepend(Event::input(
            Principal::new(format!("relay{}", d)),
            Provenance::empty(),
        ));
    }
    ProvenanceRecord::new(
        t,
        origin,
        Operation::Send,
        "m",
        value(&format!("v{}", v)),
        k,
    )
}

/// All the requests whose answers cover the generated state space.
fn probe_requests() -> Vec<AuditRequest> {
    let mut requests = Vec::new();
    for v in 0..5u8 {
        requests.push(AuditRequest::AuditTrail {
            value: value(&format!("v{}", v)),
        });
        requests.push(AuditRequest::OriginOf {
            value: value(&format!("v{}", v)),
        });
        requests.push(AuditRequest::VetValue {
            value: value(&format!("v{}", v)),
            pattern: "from-supplier".into(),
        });
    }
    for s in 0..4u8 {
        requests.push(AuditRequest::WhoTouched {
            principal: Principal::new(format!("s{}", s)),
        });
    }
    for d in 0..4u8 {
        requests.push(AuditRequest::WhoTouched {
            principal: Principal::new(format!("relay{}", d)),
        });
    }
    requests
}

fn register_probe_pattern(engine: &AuditEngine) {
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of(["s0", "s1", "s2", "s3"])),
    );
}

/// Compares a snapshot answer against a fresh engine holding exactly the
/// snapshot's prefix: outcomes and watermarks must agree request for
/// request (work stats may differ — memo warmth is not part of the
/// contract).
fn assert_snapshot_equals_prefix_engine(
    engine: &AuditEngine,
    snapshot: &EngineSnapshot,
    prefix: &[ProvenanceRecord],
    scratch: &PathBuf,
) {
    let fresh = AuditEngine::open(scratch).unwrap();
    register_probe_pattern(&fresh);
    let mut strip = |mut r: ProvenanceRecord| {
        r.sequence = 0;
        r
    };
    fresh
        .ingest_batch(prefix.iter().cloned().map(&mut strip).collect())
        .unwrap();
    assert_eq!(fresh.watermark(), snapshot.watermark());
    for request in probe_requests() {
        let from_snapshot = engine.handle_at(snapshot, &request);
        let from_fresh = fresh.handle(&request);
        assert_eq!(
            from_snapshot.outcome,
            from_fresh.outcome,
            "snapshot at watermark {} diverges from the prefix engine on {}",
            snapshot.watermark(),
            request
        );
        assert_eq!(from_snapshot.watermark, from_fresh.watermark);
    }
}

proptest! {
    // 24 cases locally; PIPROV_PROPTEST_CASES raises it in the CI deep run.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_at_watermark_k_answers_like_a_fresh_engine_of_records_to_k(
        steps in arb_steps(),
        batch_size in 1usize..6,
    ) {
        let records: Vec<ProvenanceRecord> = steps
            .iter()
            .enumerate()
            .map(|(t, step)| step_record(t as u64, *step))
            .collect();
        let dir = temp_dir("equiv");
        let engine = AuditEngine::open(&dir).unwrap();
        register_probe_pattern(&engine);

        // Ingest batch by batch, pinning the snapshot after each batch.
        let mut checkpoints: Vec<(Arc<EngineSnapshot>, usize)> = Vec::new();
        let mut ingested = 0usize;
        for batch in records.chunks(batch_size) {
            engine.ingest_batch(batch.to_vec()).unwrap();
            ingested += batch.len();
            checkpoints.push((engine.snapshot(), ingested));
        }

        // Check the middle and final checkpoints: the pinned snapshot at
        // watermark k answers exactly like a fresh engine of records ..=k
        // — even though the pinned one's engine has long moved past k.
        let picks = [checkpoints.len() / 2, checkpoints.len() - 1];
        for (i, pick) in picks.iter().enumerate() {
            let (snapshot, prefix_len) = &checkpoints[*pick];
            prop_assert_eq!(snapshot.watermark(), *prefix_len as u64);
            let scratch = temp_dir(&format!("equiv-fresh-{}", i));
            assert_snapshot_equals_prefix_engine(
                &engine,
                snapshot,
                &records[..*prefix_len],
                &scratch,
            );
            std::fs::remove_dir_all(&scratch).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
