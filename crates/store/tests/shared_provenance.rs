//! Round-trip properties of the store codec on *deeply shared* channel
//! provenance.
//!
//! The DAG record format (see [`piprov_store::BodyFormat`]) encodes every
//! distinct interned provenance node exactly once; these tests generate
//! provenance values with heavy, adversarial sharing — channel provenances
//! and tails drawn from a pool of previously built sequences — and check
//! that
//!
//! * `decode(encode(r)) == r` for both the DAG format and the legacy
//!   preorder format (and the decoded value interns to the *same* node);
//! * the DAG encoding of a pathologically shared record is strictly (and
//!   asymptotically) smaller than the legacy preorder encoding.

use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Event, Provenance};
use piprov_core::value::Value;
use piprov_store::codec::{decode_body, decode_framed, encode_body_with, encode_framed_with};
use piprov_store::{BodyFormat, Operation, ProvenanceRecord};
use proptest::prelude::*;

/// One step of the DAG-building program: prepend one event whose channel
/// provenance and tail are picked (modulo pool size) from the sequences
/// built so far.  Interpreting a vector of these steps yields provenance
/// with arbitrarily rich sharing, including the channel-chained shape that
/// makes the logical tree exponential.
#[derive(Debug, Clone)]
struct BuildStep {
    principal: u8,
    output: bool,
    channel_pick: usize,
    tail_pick: usize,
}

fn arb_step() -> impl Strategy<Value = BuildStep> {
    (0u8..5, any::<bool>(), 0usize..32, 0usize..32).prop_map(
        |(principal, output, channel_pick, tail_pick)| BuildStep {
            principal,
            output,
            channel_pick,
            tail_pick,
        },
    )
}

/// Runs a DAG-building program: every step adds one interned node on top
/// of previously built material, so sharing accumulates.
fn build_shared_provenance(steps: &[BuildStep]) -> Provenance {
    let mut pool: Vec<Provenance> = vec![Provenance::empty()];
    for step in steps {
        let channel = pool[step.channel_pick % pool.len()].clone();
        let tail = pool[step.tail_pick % pool.len()].clone();
        let principal = Principal::new(format!("p{}", step.principal));
        let event = if step.output {
            Event::output(principal, channel)
        } else {
            Event::input(principal, channel)
        };
        pool.push(tail.prepend(event));
    }
    pool.last().expect("pool starts non-empty").clone()
}

fn record_with(provenance: Provenance) -> ProvenanceRecord {
    ProvenanceRecord {
        sequence: 9000,
        logical_time: 17,
        principal: Principal::new("auditor"),
        operation: Operation::Receive,
        channel: Channel::new("m"),
        value: Value::Channel(Channel::new("v")),
        provenance,
    }
}

proptest! {
    // 64 cases by default; PIPROV_PROPTEST_CASES overrides (CI runs the
    // suite with at least 256).
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dag_bodies_round_trip_shared_provenance(steps in proptest::collection::vec(arb_step(), 0..40)) {
        let record = record_with(build_shared_provenance(&steps));
        let decoded = decode_body(encode_body_with(&record, BodyFormat::Dag)).unwrap();
        prop_assert_eq!(&decoded, &record);
        // The decoder rebuilt through the interner: same node, not merely
        // an equal copy.
        prop_assert_eq!(decoded.provenance.id(), record.provenance.id());
    }

    #[test]
    fn legacy_bodies_round_trip_shared_provenance(steps in proptest::collection::vec(arb_step(), 0..24)) {
        let record = record_with(build_shared_provenance(&steps));
        // The preorder expansion is O(tree); skip pathological cases the
        // legacy format was never expected to handle at speed (the cached
        // total_size makes this guard O(1)).
        if record.provenance.total_size() > 1 << 16 {
            return;
        }
        let decoded = decode_body(encode_body_with(&record, BodyFormat::LegacyPreorder)).unwrap();
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(decoded.provenance.id(), record.provenance.id());
    }

    #[test]
    fn framed_dag_records_round_trip(steps in proptest::collection::vec(arb_step(), 0..40)) {
        let record = record_with(build_shared_provenance(&steps));
        let mut framed = encode_framed_with(&record, BodyFormat::Dag);
        let decoded = decode_framed(&mut framed).unwrap().unwrap();
        prop_assert_eq!(decoded, record);
        prop_assert_eq!(decode_framed(&mut framed).unwrap(), None);
    }

    #[test]
    fn dag_encoding_never_stores_a_node_twice(steps in proptest::collection::vec(arb_step(), 0..40)) {
        let record = record_with(build_shared_provenance(&steps));
        let body = encode_body_with(&record, BodyFormat::Dag);
        // Size is O(DAG): a generous per-node constant bounds the body.
        let nodes = record.provenance.dag_size();
        prop_assert!(body.len() <= 96 + 32 * nodes,
            "body {} bytes for {} dag nodes", body.len(), nodes);
    }
}

/// Deterministic pathological case: a value relayed `hops` times where
/// every hop's channel carries the full history so far.  The logical tree
/// doubles per hop; the DAG grows by two nodes per hop.
fn chained(hops: usize) -> Provenance {
    let mut provenance =
        Provenance::single(Event::output(Principal::new("origin"), Provenance::empty()));
    for i in 0..hops {
        let principal = Principal::new(format!("relay{}", i));
        provenance = provenance
            .prepend(Event::output(principal.clone(), provenance.clone()))
            .prepend(Event::input(principal, provenance.clone()));
    }
    provenance
}

#[test]
fn dag_encoding_is_strictly_smaller_on_pathological_sharing() {
    let record = record_with(chained(9));
    let tree = record.provenance.total_size();
    let dag_nodes = record.provenance.dag_size();
    assert!(tree > 1 << 9, "tree is exponential: {}", tree);
    assert!(dag_nodes <= 2 * 9 + 1, "dag is linear: {}", dag_nodes);
    let dag = encode_body_with(&record, BodyFormat::Dag);
    let legacy = encode_body_with(&record, BodyFormat::LegacyPreorder);
    assert!(
        dag.len() < legacy.len(),
        "dag {} bytes must beat legacy {} bytes",
        dag.len(),
        legacy.len()
    );
    // The gap is asymptotic, not incidental: the legacy body pays per tree
    // event, the DAG body per distinct node.
    assert!(legacy.len() >= tree * 5, "legacy is O(tree)");
    assert!(dag.len() <= 96 + 32 * dag_nodes, "dag is O(dag nodes)");
    // Both still decode to the same record.
    assert_eq!(decode_body(dag).unwrap(), record);
    assert_eq!(decode_body(legacy).unwrap(), record);
}

#[test]
fn direction_mix_survives_the_dag_round_trip() {
    // Regression-style check that Output/Input and empty/non-empty channel
    // provenances all hit distinct interned nodes and decode faithfully.
    let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
    let provenance = Provenance::empty()
        .prepend(Event::output(Principal::new("a"), km.clone()))
        .prepend(Event::input(Principal::new("b"), km.clone()))
        .prepend(Event::input(Principal::new("a"), Provenance::empty()))
        .prepend(Event::output(Principal::new("b"), km));
    let record = record_with(provenance);
    for format in [BodyFormat::Dag, BodyFormat::LegacyPreorder] {
        assert_eq!(
            decode_body(encode_body_with(&record, format)).unwrap(),
            record
        );
    }
}
