//! # piprov-store
//!
//! An append-only **provenance store**: durable storage and audit querying
//! for the provenance records produced by running provenance-calculus
//! systems.
//!
//! The paper's motivating applications (auditing, error investigation,
//! trust decisions) all need the provenance that the calculus tracks at run
//! time to be *persisted* and *queryable* afterwards — the role played by
//! provenance-aware storage systems such as PASS (the paper's citation
//! \[20\]).  This crate provides that substrate:
//!
//! * [`record`] — provenance records, one per exchanged value per step;
//! * [`codec`] — a checksummed, length-prefixed binary encoding;
//! * [`segment`] — append-only segment files with torn-write detection;
//! * [`store`] — the [`ProvenanceStore`]: rotation, recovery, compaction;
//! * [`index`] — in-memory secondary indexes by principal/channel/value;
//! * [`query`] — audit trails, taint analysis, origin queries;
//! * [`recorder`] — glue that persists an executor's trace as it runs.
//!
//! ```
//! use piprov_core::pattern::{AnyPattern, TrivialPatterns};
//! use piprov_core::process::Process;
//! use piprov_core::system::System;
//! use piprov_core::value::{Identifier, Value};
//! use piprov_core::name::Channel;
//! use piprov_store::{ProvenanceStore, StoreQuery, run_and_record};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("piprov-doc-{}", std::process::id()));
//! let mut store = ProvenanceStore::open(&dir)?;
//! let system: System<AnyPattern> = System::par(
//!     System::located("a", Process::output(Identifier::channel("m"), Identifier::channel("v"))),
//!     System::located("b", Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil())),
//! );
//! run_and_record(&system, TrivialPatterns, &mut store, 100)?;
//! let query = StoreQuery::new(&store);
//! let trail = query.audit_trail(&Value::Channel(Channel::new("v")));
//! assert_eq!(trail.records.len(), 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod error;
pub mod index;
pub mod query;
pub mod record;
pub mod recorder;
pub mod segment;
pub mod store;

pub use codec::BodyFormat;
pub use error::StoreError;
pub use index::{SharedStoreIndex, StoreIndex};
pub use query::{AuditTrail, StoreQuery};
pub use record::{Operation, ProvenanceRecord, SequenceNumber};
pub use recorder::{run_and_record, TraceRecorder};
pub use segment::{scan_segment, Segment, SegmentScan};
pub use store::{ProvenanceStore, RepairReport, StoreConfig, StoreStats};
