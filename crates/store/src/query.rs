//! Audit queries over a provenance store.
//!
//! These implement the questions the paper motivates provenance with:
//! *who was involved in getting this value to its current state?* (the
//! auditing example of §2.3.2), *where did it originate?*, *which values
//! did a given principal ever touch?*

use crate::record::{Operation, ProvenanceRecord, SequenceNumber};
use crate::store::ProvenanceStore;
use piprov_core::name::{Channel, Principal};
use piprov_core::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// The reconstructed audit trail of a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditTrail {
    /// The value being audited.
    pub value: Value,
    /// Every record mentioning the value, in sequence order.
    pub records: Vec<ProvenanceRecord>,
    /// Principals involved, in order of first appearance (union of acting
    /// principals and principals in recorded provenance).
    pub principals: Vec<Principal>,
    /// Channels the value travelled on.
    pub channels: Vec<Channel>,
}

impl AuditTrail {
    /// Assembles a trail from the records that mention `value` (in
    /// sequence order), deriving the involved principals (first-appearance
    /// order) and the channels travelled.
    ///
    /// This is the single construction path shared by
    /// [`StoreQuery::audit_trail`] and the audit engine's MVCC snapshots,
    /// so a trail answered from an immutable snapshot is byte-for-byte the
    /// trail the store itself would have produced at that watermark.
    pub fn from_records(value: Value, records: Vec<ProvenanceRecord>) -> Self {
        let mut principals = Vec::new();
        let mut channels = Vec::new();
        for r in &records {
            for p in r.principals_involved() {
                if !principals.contains(&p) {
                    principals.push(p);
                }
            }
            if !channels.contains(&r.channel)
                && matches!(r.operation, Operation::Send | Operation::Receive)
            {
                channels.push(r.channel.clone());
            }
        }
        AuditTrail {
            value,
            records,
            principals,
            channels,
        }
    }

    /// `true` if `principal` appears anywhere in the trail.
    pub fn involves(&self, principal: &Principal) -> bool {
        self.principals.contains(principal)
    }

    /// The principal that originally sent the value: the *oldest* output
    /// event recorded anywhere in the trail.
    ///
    /// Records are scanned oldest-first and each record's provenance
    /// oldest-event-first, so the earliest recorded history wins.  Trusting
    /// the newest record instead would mis-attribute relayed values: a
    /// relay's record can carry a history that starts at the relay (its
    /// receive record was persisted without provenance, or an intermediary
    /// re-tagged the value), and the true origin then only survives in the
    /// older records of the trail.
    pub fn origin(&self) -> Option<Principal> {
        self.records
            .iter()
            .flat_map(|r| {
                let events = r.provenance.to_vec();
                events.into_iter().rev()
            })
            .find(|e| e.is_output())
            .map(|e| e.principal)
    }
}

impl fmt::Display for AuditTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit trail for {}: {} records",
            self.value,
            self.records.len()
        )?;
        for r in &self.records {
            writeln!(f, "  {}", r)?;
        }
        write!(f, "  principals involved: ")?;
        for (i, p) in self.principals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p)?;
        }
        Ok(())
    }
}

/// Query interface over a [`ProvenanceStore`].
#[derive(Debug)]
pub struct StoreQuery<'a> {
    store: &'a ProvenanceStore,
}

impl<'a> StoreQuery<'a> {
    /// Creates a query handle over a store.
    pub fn new(store: &'a ProvenanceStore) -> Self {
        StoreQuery { store }
    }

    /// Every record in which `principal` acted.
    pub fn records_by_principal(&self, principal: &Principal) -> Vec<&ProvenanceRecord> {
        self.store
            .get_many(self.store.index().by_principal(principal).iter().copied())
            .collect()
    }

    /// Every record on `channel`.
    pub fn records_on_channel(&self, channel: &Channel) -> Vec<&ProvenanceRecord> {
        self.store
            .get_many(self.store.index().by_channel(channel).iter().copied())
            .collect()
    }

    /// Every record exchanging `value`.
    pub fn records_of_value(&self, value: &Value) -> Vec<&ProvenanceRecord> {
        self.store
            .get_many(self.store.index().by_value(value).iter().copied())
            .collect()
    }

    /// Records in a half-open range of sequence numbers.
    pub fn records_in_range(
        &self,
        from: SequenceNumber,
        to: SequenceNumber,
    ) -> Vec<&ProvenanceRecord> {
        self.store
            .iter()
            .filter(|r| r.sequence >= from && r.sequence < to)
            .collect()
    }

    /// Reconstructs the audit trail of a value: all records that exchanged
    /// it, the principals involved and the channels it travelled on.
    pub fn audit_trail(&self, value: &Value) -> AuditTrail {
        let records: Vec<ProvenanceRecord> =
            self.records_of_value(value).into_iter().cloned().collect();
        AuditTrail::from_records(value.clone(), records)
    }

    /// The set of principals that ever handled data which, according to its
    /// provenance, passed through `suspect` — the paper's error-
    /// investigation scenario ("the three principals may be further
    /// investigated").
    pub fn tainted_by(&self, suspect: &Principal) -> BTreeSet<Principal> {
        let mut out = BTreeSet::new();
        for seq in self.store.index().by_involved_principal(suspect) {
            if let Some(record) = self.store.get(*seq) {
                out.insert(record.principal.clone());
            }
        }
        out
    }

    /// Values whose recorded provenance claims they originated at
    /// `principal` (oldest event is an output by that principal).
    pub fn values_originating_at(&self, principal: &Principal) -> Vec<Value> {
        let mut out = Vec::new();
        for record in self.store.iter() {
            if record.provenance.originated_at(principal) && !out.contains(&record.value) {
                out.push(record.value.clone());
            }
        }
        out
    }

    /// Total number of send/receive records per principal, a simple
    /// activity summary used by the example applications.
    pub fn activity_summary(&self) -> Vec<(Principal, usize)> {
        let mut out: Vec<(Principal, usize)> = Vec::new();
        for p in self.store.index().principals() {
            let count = self.store.index().by_principal(p).len();
            out.push((p.clone(), count));
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use crate::store::ProvenanceStore;
    use piprov_core::provenance::{Event, Provenance};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-query-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Builds a store replaying the paper's auditing scenario:
    /// a sends v to s, s (faulty) forwards it to c instead of b.
    fn auditing_store(dir: &PathBuf) -> ProvenanceStore {
        let mut store = ProvenanceStore::open(dir).unwrap();
        let v = Value::Channel(Channel::new("v"));
        let a = Principal::new("a");
        let s = Principal::new("s");
        let c = Principal::new("c");
        let empty = Provenance::empty();
        // a sends v on m.
        let k1 = empty.prepend(Event::output(a.clone(), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                1,
                "a",
                Operation::Send,
                "m",
                v.clone(),
                k1.clone(),
            ))
            .unwrap();
        // s receives it on m.
        let k2 = k1.prepend(Event::input(s.clone(), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                2,
                "s",
                Operation::Receive,
                "m",
                v.clone(),
                k2.clone(),
            ))
            .unwrap();
        // s forwards it on n' (the wrong channel).
        let k3 = k2.prepend(Event::output(s.clone(), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                3,
                "s",
                Operation::Send,
                "nprime",
                v.clone(),
                k3.clone(),
            ))
            .unwrap();
        // c receives it.
        let k4 = k3.prepend(Event::input(c.clone(), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                4,
                "c",
                Operation::Receive,
                "nprime",
                v,
                k4,
            ))
            .unwrap();
        store
    }

    #[test]
    fn audit_trail_reconstructs_the_paper_scenario() {
        let dir = temp_dir("audit");
        let store = auditing_store(&dir);
        let query = StoreQuery::new(&store);
        let v = Value::Channel(Channel::new("v"));
        let trail = query.audit_trail(&v);
        assert_eq!(trail.records.len(), 4);
        assert!(trail.involves(&Principal::new("a")));
        assert!(trail.involves(&Principal::new("s")));
        assert!(trail.involves(&Principal::new("c")));
        assert!(
            !trail.involves(&Principal::new("b")),
            "b never saw the value"
        );
        assert_eq!(trail.origin(), Some(Principal::new("a")));
        assert_eq!(
            trail.channels,
            vec![Channel::new("m"), Channel::new("nprime")]
        );
        assert!(trail.to_string().contains("principals involved"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_dimension_queries() {
        let dir = temp_dir("dims");
        let store = auditing_store(&dir);
        let query = StoreQuery::new(&store);
        assert_eq!(query.records_by_principal(&Principal::new("s")).len(), 2);
        assert_eq!(query.records_on_channel(&Channel::new("m")).len(), 2);
        assert_eq!(query.records_in_range(2, 4).len(), 2);
        let v = Value::Channel(Channel::new("v"));
        assert_eq!(query.records_of_value(&v).len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn origin_prefers_the_oldest_output_over_a_relay_retag() {
        // A relayed value whose newest record carries a history that
        // starts at the relay: a sent v (recorded), then the relay s
        // re-sent it with a provenance that only mentions s — the shape an
        // AuditRecorder produces when the relay's receive was persisted
        // without provenance, or when an intermediary re-tagged the value.
        let dir = temp_dir("relay-origin");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        let v = Value::Channel(Channel::new("v"));
        let a = Principal::new("a");
        let s = Principal::new("s");
        let empty = Provenance::empty();
        let k1 = empty.prepend(Event::output(a.clone(), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                1,
                "a",
                Operation::Send,
                "m",
                v.clone(),
                k1,
            ))
            .unwrap();
        let retag = empty.prepend(Event::output(s.clone(), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                2,
                "s",
                Operation::Send,
                "nprime",
                v.clone(),
                retag,
            ))
            .unwrap();
        let trail = store.query().audit_trail(&v);
        assert_eq!(
            trail.origin(),
            Some(a),
            "the oldest recorded output wins, not the relay's re-tag"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn origin_skips_records_without_an_output_event() {
        let dir = temp_dir("origin-skip");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        let v = Value::Channel(Channel::new("v"));
        let empty = Provenance::empty();
        // Oldest record: a receive persisted with input-only provenance.
        let k_in = empty.prepend(Event::input(Principal::new("c"), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                1,
                "c",
                Operation::Receive,
                "m",
                v.clone(),
                k_in,
            ))
            .unwrap();
        let k_out = empty
            .prepend(Event::output(Principal::new("a"), empty.clone()))
            .prepend(Event::input(Principal::new("c"), empty.clone()));
        store
            .append(ProvenanceRecord::new(
                2,
                "c",
                Operation::Receive,
                "m",
                v.clone(),
                k_out,
            ))
            .unwrap();
        let trail = store.query().audit_trail(&v);
        assert_eq!(trail.origin(), Some(Principal::new("a")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tainted_by_finds_downstream_handlers() {
        let dir = temp_dir("taint");
        let store = auditing_store(&dir);
        let query = StoreQuery::new(&store);
        let tainted = query.tainted_by(&Principal::new("a"));
        // Everyone who handled data that passed through a: a itself, s, c.
        assert!(tainted.contains(&Principal::new("a")));
        assert!(tainted.contains(&Principal::new("s")));
        assert!(tainted.contains(&Principal::new("c")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn origin_queries() {
        let dir = temp_dir("origin");
        let store = auditing_store(&dir);
        let query = StoreQuery::new(&store);
        let originated = query.values_originating_at(&Principal::new("a"));
        assert_eq!(originated, vec![Value::Channel(Channel::new("v"))]);
        assert!(query.values_originating_at(&Principal::new("c")).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn activity_summary_sorts_by_count() {
        let dir = temp_dir("activity");
        let store = auditing_store(&dir);
        let query = StoreQuery::new(&store);
        let summary = query.activity_summary();
        assert_eq!(summary[0].0, Principal::new("s"));
        assert_eq!(summary[0].1, 2);
        assert_eq!(summary.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
