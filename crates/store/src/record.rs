//! Provenance records: the unit of storage.
//!
//! Every reduction step of the provenance-tracking semantics produces one
//! record per exchanged value.  A record captures who acted, on which
//! channel, which plain value was exchanged, and the full provenance
//! annotation the value carried *after* the step — i.e. exactly the
//! information a provenance-aware storage system (in the spirit of PASS,
//! the paper's citation \[20\]) must retain to answer audit queries later.

use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Direction, Event, Provenance};
use piprov_core::reduction::{StepEvent, StepKind};
use piprov_core::value::Value;
use std::fmt;

/// Monotonically increasing identifier assigned by the store when a record
/// is appended.
pub type SequenceNumber = u64;

/// The operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// A value was sent.
    Send,
    /// A value was received.
    Receive,
    /// An equality test succeeded.
    IfTrue,
    /// An equality test failed.
    IfFalse,
}

impl Operation {
    /// Stable one-byte tag used by the binary codec.
    pub fn tag(self) -> u8 {
        match self {
            Operation::Send => 0,
            Operation::Receive => 1,
            Operation::IfTrue => 2,
            Operation::IfFalse => 3,
        }
    }

    /// Inverse of [`Operation::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Operation::Send),
            1 => Some(Operation::Receive),
            2 => Some(Operation::IfTrue),
            3 => Some(Operation::IfFalse),
            _ => None,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Send => write!(f, "snd"),
            Operation::Receive => write!(f, "rcv"),
            Operation::IfTrue => write!(f, "ift"),
            Operation::IfFalse => write!(f, "iff"),
        }
    }
}

/// A single provenance record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Sequence number assigned by the store (0 until appended).
    pub sequence: SequenceNumber,
    /// Logical time of the step that produced the record (steps of one run
    /// share a monotone clock).
    pub logical_time: u64,
    /// The principal that acted.
    pub principal: Principal,
    /// The operation performed.
    pub operation: Operation,
    /// The channel involved (for `IfTrue`/`IfFalse` this stores the
    /// left-hand value's textual form).
    pub channel: Channel,
    /// The plain value exchanged (or compared).
    pub value: Value,
    /// The provenance annotation carried by the value after the step.
    pub provenance: Provenance,
}

impl ProvenanceRecord {
    /// Creates a record with no sequence number assigned yet.
    pub fn new(
        logical_time: u64,
        principal: impl Into<Principal>,
        operation: Operation,
        channel: impl Into<Channel>,
        value: Value,
        provenance: Provenance,
    ) -> Self {
        ProvenanceRecord {
            sequence: 0,
            logical_time,
            principal: principal.into(),
            operation,
            channel: channel.into(),
            value,
            provenance,
        }
    }

    /// Builds the records corresponding to one reduction step.
    ///
    /// Send and receive steps yield one record per payload value; `if`
    /// steps yield a single record whose channel field holds the left-hand
    /// value's name.
    pub fn from_step(
        event: &StepEvent,
        logical_time: u64,
        provenances: &[Provenance],
    ) -> Vec<Self> {
        match &event.kind {
            StepKind::Send { channel, payload }
            | StepKind::Receive {
                channel, payload, ..
            } => {
                let operation = if matches!(event.kind, StepKind::Send { .. }) {
                    Operation::Send
                } else {
                    Operation::Receive
                };
                payload
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        ProvenanceRecord::new(
                            logical_time,
                            event.principal.clone(),
                            operation,
                            channel.clone(),
                            v.clone(),
                            provenances.get(i).cloned().unwrap_or_default(),
                        )
                    })
                    .collect()
            }
            StepKind::IfTrue { lhs, rhs } => vec![ProvenanceRecord::new(
                logical_time,
                event.principal.clone(),
                Operation::IfTrue,
                Channel::new(lhs.as_str()),
                rhs.clone(),
                provenances.first().cloned().unwrap_or_default(),
            )],
            StepKind::IfFalse { lhs, rhs } => vec![ProvenanceRecord::new(
                logical_time,
                event.principal.clone(),
                Operation::IfFalse,
                Channel::new(lhs.as_str()),
                rhs.clone(),
                provenances.first().cloned().unwrap_or_default(),
            )],
        }
    }

    /// All principals mentioned by the record: the actor plus everyone in
    /// the value's provenance.
    pub fn principals_involved(&self) -> Vec<Principal> {
        let mut out = vec![self.principal.clone()];
        for p in self.provenance.principals_involved() {
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Size estimate of the record in bytes (used by segment rotation and
    /// as the encoder's buffer capacity hint).
    ///
    /// Scales with the number of *distinct* provenance DAG nodes, matching
    /// the DAG codec: an estimate based on `total_size` would grow with the
    /// logical tree, which is exponentially larger under channel-chained
    /// histories.
    pub fn estimated_size(&self) -> usize {
        64 + self.channel.as_str().len()
            + self.value.as_str().len()
            + self.principal.as_str().len()
            + self.provenance.dag_size() * 24
    }
}

impl fmt::Display for ProvenanceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={} {}.{}({}, {}) :: {}",
            self.sequence,
            self.logical_time,
            self.principal,
            self.operation,
            self.channel,
            self.value,
            self.provenance
        )
    }
}

/// Flattens a provenance sequence (with its nested channel provenances)
/// into a preorder list of `(depth, event)` pairs; the inverse operation is
/// performed by the codec when decoding.
///
/// This expands all sharing — the list has `total_size` entries, i.e. one
/// per *tree* occurrence — and is used only by the legacy preorder record
/// format; the default DAG format serializes each distinct node once (see
/// [`crate::codec::BodyFormat`]).
pub fn flatten_provenance(provenance: &Provenance) -> Vec<(u32, Event)> {
    fn go(provenance: &Provenance, depth: u32, out: &mut Vec<(u32, Event)>) {
        for event in provenance.iter() {
            out.push((depth, event.clone()));
            go(&event.channel_provenance, depth + 1, out);
        }
    }
    let mut out = Vec::new();
    go(provenance, 0, &mut out);
    out
}

/// Reconstructs a provenance sequence from the preorder `(depth, event)`
/// list produced by [`flatten_provenance`].
pub fn unflatten_provenance(items: &[(u32, Event)]) -> Provenance {
    fn build(items: &[(u32, Event)], depth: u32, cursor: &mut usize) -> Provenance {
        let mut events = Vec::new();
        while *cursor < items.len() && items[*cursor].0 == depth {
            let (_, event) = &items[*cursor];
            *cursor += 1;
            let nested = build(items, depth + 1, cursor);
            events.push(Event {
                principal: event.principal.clone(),
                direction: event.direction,
                channel_provenance: nested,
            });
        }
        Provenance::from_events(events)
    }
    let mut cursor = 0;
    build(items, 0, &mut cursor)
}

/// Re-export used by the codec to avoid a dependency cycle in imports.
pub use piprov_core::provenance::Direction as EventDirection;

/// Helper: a direction's stable tag for the codec.
pub fn direction_tag(direction: Direction) -> u8 {
    match direction {
        Direction::Output => 0,
        Direction::Input => 1,
    }
}

/// Inverse of [`direction_tag`].
pub fn direction_from_tag(tag: u8) -> Option<Direction> {
    match tag {
        0 => Some(Direction::Output),
        1 => Some(Direction::Input),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::name::Principal;

    fn sample_provenance() -> Provenance {
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        Provenance::empty()
            .prepend(Event::output(Principal::new("a"), km.clone()))
            .prepend(Event::input(Principal::new("b"), km))
    }

    #[test]
    fn operation_tags_round_trip() {
        for op in [
            Operation::Send,
            Operation::Receive,
            Operation::IfTrue,
            Operation::IfFalse,
        ] {
            assert_eq!(Operation::from_tag(op.tag()), Some(op));
        }
        assert_eq!(Operation::from_tag(99), None);
    }

    #[test]
    fn direction_tags_round_trip() {
        assert_eq!(
            direction_from_tag(direction_tag(Direction::Output)),
            Some(Direction::Output)
        );
        assert_eq!(
            direction_from_tag(direction_tag(Direction::Input)),
            Some(Direction::Input)
        );
        assert_eq!(direction_from_tag(7), None);
    }

    #[test]
    fn flatten_unflatten_round_trip() {
        let p = sample_provenance();
        let flat = flatten_provenance(&p);
        assert_eq!(flat.len(), p.total_size());
        assert_eq!(unflatten_provenance(&flat), p);
        assert_eq!(unflatten_provenance(&[]), Provenance::empty());
    }

    #[test]
    fn records_from_send_step() {
        use piprov_core::name::Channel;
        let event = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::Send {
                channel: Channel::new("m"),
                payload: vec![Value::Channel(Channel::new("v"))],
            },
        };
        let records = ProvenanceRecord::from_step(&event, 7, &[sample_provenance()]);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.logical_time, 7);
        assert_eq!(r.operation, Operation::Send);
        assert_eq!(r.channel, Channel::new("m"));
        assert_eq!(r.provenance, sample_provenance());
        assert!(r.principals_involved().contains(&Principal::new("a")));
        assert!(r.principals_involved().contains(&Principal::new("c")));
        assert!(r.estimated_size() > 64);
        assert!(r.to_string().contains("a.snd(m, v)"));
    }

    #[test]
    fn records_from_if_step() {
        use piprov_core::name::Channel;
        let event = StepEvent {
            principal: Principal::new("a"),
            kind: StepKind::IfFalse {
                lhs: Value::Channel(Channel::new("u")),
                rhs: Value::Channel(Channel::new("v")),
            },
        };
        let records = ProvenanceRecord::from_step(&event, 1, &[]);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].operation, Operation::IfFalse);
        assert_eq!(records[0].channel, Channel::new("u"));
    }
}
