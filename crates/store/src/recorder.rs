//! Bridges the calculus executor and the provenance store.
//!
//! The [`TraceRecorder`] turns the [`StepEvent`] trace produced by the
//! reduction semantics into durable provenance records, capturing the
//! provenance annotations of the values as they appear in the resulting
//! configuration — i.e. exactly what the trusted middleware of the paper's
//! footnote 1 would persist.

use crate::error::StoreError;
use crate::record::ProvenanceRecord;
use crate::store::ProvenanceStore;
use piprov_core::configuration::Configuration;
use piprov_core::pattern::PatternLanguage;
use piprov_core::reduction::{StepEvent, StepKind};
use piprov_core::system::System;
use piprov_core::Executor;

/// Records every reduction step of an executor into a provenance store.
#[derive(Debug)]
pub struct TraceRecorder<'a> {
    store: &'a mut ProvenanceStore,
    logical_time: u64,
    recorded: usize,
}

impl<'a> TraceRecorder<'a> {
    /// Creates a recorder appending into `store`.
    pub fn new(store: &'a mut ProvenanceStore) -> Self {
        TraceRecorder {
            store,
            logical_time: 0,
            recorded: 0,
        }
    }

    /// Number of records appended so far.
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// Records one step.  The configuration *after* the step is consulted to
    /// recover the updated provenance of in-flight values for sends.
    ///
    /// # Errors
    ///
    /// Returns an error if the store append fails.
    pub fn record_step<P: Clone>(
        &mut self,
        event: &StepEvent,
        after: &Configuration<P>,
    ) -> Result<(), StoreError> {
        self.logical_time += 1;
        let provenances = match &event.kind {
            StepKind::Send { channel, payload } => {
                // The message just produced is the last one whose channel and
                // plain payload match the event.
                after
                    .messages
                    .iter()
                    .rev()
                    .find(|m| {
                        &m.channel == channel
                            && m.payload.len() == payload.len()
                            && m.payload
                                .iter()
                                .zip(payload.iter())
                                .all(|(av, v)| &av.value == v)
                    })
                    .map(|m| m.payload.iter().map(|av| av.provenance.clone()).collect())
                    .unwrap_or_default()
            }
            _ => Vec::new(),
        };
        let records = ProvenanceRecord::from_step(event, self.logical_time, &provenances);
        for record in records {
            self.store.append(record)?;
            self.recorded += 1;
        }
        Ok(())
    }
}

/// Runs a system to quiescence (or `max_steps`), persisting every step into
/// `store`.  Returns the number of reduction steps performed.
///
/// # Errors
///
/// Returns an error if reduction fails or a store append fails.
pub fn run_and_record<P, L>(
    system: &System<P>,
    matcher: L,
    store: &mut ProvenanceStore,
    max_steps: usize,
) -> Result<usize, Box<dyn std::error::Error>>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    let mut executor = Executor::new(system, matcher).without_trace();
    let mut recorder = TraceRecorder::new(store);
    let mut steps = 0;
    while steps < max_steps {
        match executor.step()? {
            None => break,
            Some(event) => {
                recorder.record_step(&event, executor.configuration())?;
                steps += 1;
            }
        }
    }
    store.sync()?;
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StoreQuery;
    use crate::record::Operation;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::pattern::{AnyPattern, TrivialPatterns};
    use piprov_core::process::Process;
    use piprov_core::value::{Identifier, Value};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-recorder-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn relay() -> System<AnyPattern> {
        System::par_all(vec![
            System::located(
                "a",
                Process::output(Identifier::channel("m"), Identifier::channel("v")),
            ),
            System::located(
                "s",
                Process::input(
                    Identifier::channel("m"),
                    AnyPattern,
                    "x",
                    Process::output(Identifier::channel("nprime"), Identifier::variable("x")),
                ),
            ),
            System::located(
                "c",
                Process::input(
                    Identifier::channel("nprime"),
                    AnyPattern,
                    "y",
                    Process::nil(),
                ),
            ),
        ])
    }

    #[test]
    fn run_and_record_persists_every_step() {
        let dir = temp_dir("run");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        let steps = run_and_record(&relay(), TrivialPatterns, &mut store, 1_000).unwrap();
        assert_eq!(steps, 4, "send, receive, forward, receive");
        assert_eq!(store.len(), 4);
        // The forwarded send's record carries the accumulated provenance.
        let query = StoreQuery::new(&store);
        let trail = query.audit_trail(&Value::Channel(Channel::new("v")));
        assert!(trail.involves(&Principal::new("a")));
        assert!(trail.involves(&Principal::new("s")));
        assert_eq!(trail.origin(), Some(Principal::new("a")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn send_records_capture_updated_provenance() {
        let dir = temp_dir("prov");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        run_and_record(&relay(), TrivialPatterns, &mut store, 1_000).unwrap();
        // The second send (by s on nprime) must carry provenance mentioning a.
        let forwarded = store
            .iter()
            .find(|r| r.channel == Channel::new("nprime") && r.operation == Operation::Send)
            .expect("forwarded send record");
        assert!(forwarded
            .provenance
            .principals_involved()
            .contains(&Principal::new("a")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_counts_records() {
        let dir = temp_dir("count");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        let mut executor = Executor::new(&relay(), TrivialPatterns);
        let mut recorder = TraceRecorder::new(&mut store);
        while let Some(event) = executor.step().unwrap() {
            recorder
                .record_step(&event, executor.configuration())
                .unwrap();
        }
        assert_eq!(recorder.recorded(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
