//! Append-only segment files.
//!
//! A segment is a file containing a sequence of framed records (see
//! [`crate::codec`]).  Segments are written strictly append-only; once a
//! segment reaches its size budget the store seals it and opens a new one.
//! Reading a segment scans it front to back, stopping cleanly at the end
//! or reporting corruption (torn final frame after a crash is reported so
//! that recovery can truncate it).

use crate::codec::{decode_framed, encode_framed};
use crate::error::StoreError;
use crate::record::ProvenanceRecord;
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Default size budget for a segment before rotation (bytes).
pub const DEFAULT_SEGMENT_BUDGET: usize = 4 * 1024 * 1024;

/// A writable, append-only segment.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    writer: BufWriter<File>,
    written: usize,
    records: usize,
}

impl Segment {
    /// Creates (or truncates) a segment file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Segment {
            path,
            writer: BufWriter::new(file),
            written: 0,
            records: 0,
        })
    }

    /// Opens an existing segment for appending.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened; the current size is
    /// read so rotation accounting stays correct.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len() as usize;
        Ok(Segment {
            path,
            writer: BufWriter::new(file),
            written,
            records: 0,
        })
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far (including pre-existing content for reopened
    /// segments).
    pub fn bytes_written(&self) -> usize {
        self.written
    }

    /// Records appended through this handle.
    pub fn records_appended(&self) -> usize {
        self.records
    }

    /// Appends a record, returning the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns an error if the write fails.
    pub fn append(&mut self, record: &ProvenanceRecord) -> Result<usize, StoreError> {
        let framed = encode_framed(record);
        self.writer.write_all(&framed)?;
        self.written += framed.len();
        self.records += 1;
        Ok(framed.len())
    }

    /// Flushes buffered writes to the operating system.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes and syncs the segment to stable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush or sync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// `true` when the segment has reached its size budget.
    pub fn is_full(&self, budget: usize) -> bool {
        self.written >= budget
    }
}

/// The result of scanning a segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records successfully decoded, in file order.
    pub records: Vec<ProvenanceRecord>,
    /// `Some(error)` if the scan stopped early due to a torn or corrupt
    /// frame (everything before it is still returned).
    pub error: Option<StoreError>,
}

impl SegmentScan {
    /// `true` if the whole segment decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
    }
}

/// Reads every record from a segment file.
///
/// # Errors
///
/// Returns an error only if the file cannot be read at all; decode errors
/// are reported inside the returned [`SegmentScan`] so that recovery can
/// keep the valid prefix.
pub fn scan_segment(path: impl AsRef<Path>) -> Result<SegmentScan, StoreError> {
    let mut file = File::open(path.as_ref())?;
    let mut contents = Vec::new();
    file.read_to_end(&mut contents)?;
    let mut buf = Bytes::from(contents);
    let mut records = Vec::new();
    loop {
        match decode_framed(&mut buf) {
            Ok(Some(record)) => records.push(record),
            Ok(None) => return Ok(SegmentScan { records, error: None }),
            Err(e) => {
                return Ok(SegmentScan {
                    records,
                    error: Some(e),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::provenance::Provenance;
    use piprov_core::value::Value;

    fn record(seq: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            sequence: seq,
            logical_time: seq,
            principal: Principal::new("a"),
            operation: Operation::Send,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new(format!("v{}", seq))),
            provenance: Provenance::empty(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-segment-{}-{}", std::process::id(), name));
        dir
    }

    #[test]
    fn write_then_scan_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut seg = Segment::create(&path).unwrap();
            for i in 0..10 {
                seg.append(&record(i)).unwrap();
            }
            assert_eq!(seg.records_appended(), 10);
            assert!(seg.bytes_written() > 0);
            seg.sync().unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.records[3], record(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_path("reopen");
        {
            let mut seg = Segment::create(&path).unwrap();
            seg.append(&record(0)).unwrap();
            seg.flush().unwrap();
        }
        {
            let mut seg = Segment::open_append(&path).unwrap();
            assert!(seg.bytes_written() > 0);
            seg.append(&record(1)).unwrap();
            seg.flush().unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_reported_but_prefix_survives() {
        let path = temp_path("torn");
        {
            let mut seg = Segment::create(&path).unwrap();
            seg.append(&record(0)).unwrap();
            seg.append(&record(1)).unwrap();
            seg.flush().unwrap();
        }
        // Simulate a crash mid-write: append garbage that looks like the
        // start of a frame.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[0, 0, 0, 50, 1, 2, 3]).unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 2, "valid prefix is preserved");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_budget() {
        let path = temp_path("budget");
        let mut seg = Segment::create(&path).unwrap();
        assert!(!seg.is_full(1024));
        for i in 0..50 {
            seg.append(&record(i)).unwrap();
        }
        assert!(seg.is_full(64), "tiny budget should be exceeded");
        std::fs::remove_file(&path).ok();
    }
}
