//! Append-only segment files.
//!
//! A segment is a file containing a sequence of framed records (see
//! [`crate::codec`]).  Segments are written strictly append-only; once a
//! segment reaches its size budget the store seals it and opens a new one.
//! Reading a segment scans it front to back, stopping cleanly at the end
//! or reporting corruption (torn final frame after a crash is reported so
//! that recovery can truncate it).

use crate::codec::{decode_framed, encode_framed};
use crate::error::StoreError;
use crate::record::ProvenanceRecord;
use bytes::{Buf, Bytes};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Default size budget for a segment before rotation (bytes).
pub const DEFAULT_SEGMENT_BUDGET: usize = 4 * 1024 * 1024;

/// A writable, append-only segment.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    writer: BufWriter<File>,
    written: usize,
    records: usize,
}

impl Segment {
    /// Creates (or truncates) a segment file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Segment {
            path,
            writer: BufWriter::new(file),
            written: 0,
            records: 0,
        })
    }

    /// Opens an existing segment for appending.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened; the current size is
    /// read so rotation accounting stays correct.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len() as usize;
        Ok(Segment {
            path,
            writer: BufWriter::new(file),
            written,
            records: 0,
        })
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far (including pre-existing content for reopened
    /// segments).
    pub fn bytes_written(&self) -> usize {
        self.written
    }

    /// Records appended through this handle.
    pub fn records_appended(&self) -> usize {
        self.records
    }

    /// Appends a record, returning the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns an error if the write fails.
    pub fn append(&mut self, record: &ProvenanceRecord) -> Result<usize, StoreError> {
        let framed = encode_framed(record);
        self.writer.write_all(&framed)?;
        self.written += framed.len();
        self.records += 1;
        Ok(framed.len())
    }

    /// Flushes buffered writes to the operating system.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes and syncs the segment to stable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush or sync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// `true` when the segment has reached its size budget.
    pub fn is_full(&self, budget: usize) -> bool {
        self.written >= budget
    }
}

/// The result of scanning a segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records successfully decoded, in file order.
    pub records: Vec<ProvenanceRecord>,
    /// Length in bytes of the cleanly decodable prefix; recovery truncates
    /// a torn segment to this length before resuming appends.
    pub valid_len: usize,
    /// When a decode error stopped the scan, `true` iff no decodable frame
    /// exists anywhere after the failing one: the signature of an append
    /// interrupted by a crash.  `false` means valid frames follow the bad
    /// one — that is mid-file corruption, which recovery must never
    /// truncate away.
    pub torn_tail: bool,
    /// `Some(error)` if the scan stopped early due to a torn or corrupt
    /// frame (everything before it is still returned).
    pub error: Option<StoreError>,
}

impl SegmentScan {
    /// `true` if the whole segment decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
    }
}

/// Reads every record from a segment file.
///
/// # Errors
///
/// Returns an error only if the file cannot be read at all; decode errors
/// are reported inside the returned [`SegmentScan`] so that recovery can
/// keep the valid prefix.
pub fn scan_segment(path: impl AsRef<Path>) -> Result<SegmentScan, StoreError> {
    let mut file = File::open(path.as_ref())?;
    let mut contents = Vec::new();
    file.read_to_end(&mut contents)?;
    let total = contents.len();
    let full = Bytes::from(contents);
    let mut buf = full.clone();
    let mut records = Vec::new();
    loop {
        let clean_prefix = total - buf.remaining();
        match decode_framed(&mut buf) {
            Ok(Some(record)) => records.push(record),
            Ok(None) => {
                return Ok(SegmentScan {
                    records,
                    valid_len: total - buf.remaining(),
                    torn_tail: false,
                    error: None,
                })
            }
            Err(e) => {
                // A failing frame with nothing decodable after it is a torn
                // append; decodable frames after it mean mid-file
                // corruption.  The bad frame's own length prefix cannot be
                // trusted to find "after" (the flipped bit may be *in* the
                // prefix), so scan for any CRC-valid frame at a later
                // offset instead.
                let tail = total - clean_prefix;
                let torn_tail = tail < 8 || !contains_valid_frame(&full, clean_prefix + 1);
                return Ok(SegmentScan {
                    records,
                    valid_len: clean_prefix,
                    torn_tail,
                    error: Some(e),
                });
            }
        }
    }
}

/// Whether any complete, CRC-valid, decodable frame starts at or after
/// byte `from`.  Used only on the scan error path to tell a torn final
/// append (safe to truncate) from mid-file corruption (must be preserved).
/// A candidate only counts if its body also decodes, so runs of zero bytes
/// left by out-of-order block writes cannot masquerade as frames.
fn contains_valid_frame(data: &[u8], from: usize) -> bool {
    // The smallest real body is well above decode_body's 18-byte floor
    // (version tag + sequence + logical time + operation tag).
    const MIN_BODY: usize = 18;
    let total = data.len();
    let mut offset = from;
    while offset + 8 + MIN_BODY <= total {
        let len = u32::from_be_bytes([
            data[offset],
            data[offset + 1],
            data[offset + 2],
            data[offset + 3],
        ]) as usize;
        let body_start = offset + 8;
        if (MIN_BODY..=total - body_start).contains(&len) {
            let crc = u32::from_be_bytes([
                data[offset + 4],
                data[offset + 5],
                data[offset + 6],
                data[offset + 7],
            ]);
            let body = &data[body_start..body_start + len];
            if crate::codec::crc32(body) == crc
                && crate::codec::decode_body(Bytes::copy_from_slice(body)).is_ok()
            {
                return true;
            }
        }
        offset += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::provenance::Provenance;
    use piprov_core::value::Value;

    fn record(seq: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            sequence: seq,
            logical_time: seq,
            principal: Principal::new("a"),
            operation: Operation::Send,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new(format!("v{}", seq))),
            provenance: Provenance::empty(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-segment-{}-{}", std::process::id(), name));
        dir
    }

    #[test]
    fn write_then_scan_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut seg = Segment::create(&path).unwrap();
            for i in 0..10 {
                seg.append(&record(i)).unwrap();
            }
            assert_eq!(seg.records_appended(), 10);
            assert!(seg.bytes_written() > 0);
            seg.sync().unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert!(scan.is_clean());
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.records[3], record(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_path("reopen");
        {
            let mut seg = Segment::create(&path).unwrap();
            seg.append(&record(0)).unwrap();
            seg.flush().unwrap();
        }
        {
            let mut seg = Segment::open_append(&path).unwrap();
            assert!(seg.bytes_written() > 0);
            seg.append(&record(1)).unwrap();
            seg.flush().unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_reported_but_prefix_survives() {
        let path = temp_path("torn");
        {
            let mut seg = Segment::create(&path).unwrap();
            seg.append(&record(0)).unwrap();
            seg.append(&record(1)).unwrap();
            seg.flush().unwrap();
        }
        // Simulate a crash mid-write: append garbage that looks like the
        // start of a frame.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[0, 0, 0, 50, 1, 2, 3]).unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 2, "valid prefix is preserved");
        assert!(scan.torn_tail, "a trailing partial frame is a torn append");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_followed_by_valid_frames_is_not_a_torn_tail() {
        let path = temp_path("midfile");
        {
            let mut seg = Segment::create(&path).unwrap();
            for i in 0..4 {
                seg.append(&record(i)).unwrap();
            }
            seg.flush().unwrap();
        }
        // Flip a byte inside the first record's body (past the 8-byte
        // header, so the frame length stays intact).
        let mut contents = std::fs::read(&path).unwrap();
        contents[12] ^= 0xFF;
        std::fs::write(&path, &contents).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 0, "scan stops at the corrupt frame");
        assert!(
            !scan.torn_tail,
            "complete frames after the bad one mean mid-file corruption"
        );
        assert_eq!(scan.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_length_prefix_with_valid_frames_after_is_not_torn() {
        let path = temp_path("badlen");
        {
            let mut seg = Segment::create(&path).unwrap();
            for i in 0..5 {
                seg.append(&record(i)).unwrap();
            }
            seg.flush().unwrap();
        }
        // Inflate the SECOND frame's length prefix so the bad frame claims
        // to reach past end-of-file; the three valid frames after it must
        // still defeat the torn-tail classification.
        let first_frame_len = encode_framed(&record(0)).len();
        let mut contents = std::fs::read(&path).unwrap();
        contents[first_frame_len] = 0xFF;
        std::fs::write(&path, &contents).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 1, "only the first record decodes");
        assert!(
            !scan.torn_tail,
            "valid frames after a corrupt length prefix mean mid-file corruption"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_final_frame_with_nothing_after_counts_as_torn() {
        let path = temp_path("badfinal");
        {
            let mut seg = Segment::create(&path).unwrap();
            seg.append(&record(0)).unwrap();
            seg.append(&record(1)).unwrap();
            seg.flush().unwrap();
        }
        // Corrupt the last byte of the file: the final frame's CRC breaks
        // but the frame is still exactly the last thing in the file — the
        // signature of an append torn by out-of-order block writes.
        let mut contents = std::fs::read(&path).unwrap();
        let last = contents.len() - 1;
        contents[last] ^= 0xFF;
        std::fs::write(&path, &contents).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.is_clean());
        assert_eq!(scan.records.len(), 1);
        assert!(
            scan.torn_tail,
            "a bad final frame is recoverable by truncation"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_budget() {
        let path = temp_path("budget");
        let mut seg = Segment::create(&path).unwrap();
        assert!(!seg.is_full(1024));
        for i in 0..50 {
            seg.append(&record(i)).unwrap();
        }
        assert!(seg.is_full(64), "tiny budget should be exceeded");
        std::fs::remove_file(&path).ok();
    }
}
