//! The provenance store: durable, append-only storage of provenance
//! records with in-memory indexes and crash recovery.
//!
//! Layout on disk: a directory containing numbered segment files
//! `seg-000001.plog`, `seg-000002.plog`, ….  Records are appended to the
//! highest-numbered (active) segment; when it exceeds the size budget a new
//! segment is started.  Recovery scans the segments in order, keeps every
//! cleanly decodable prefix, rebuilds the indexes and resumes appending.

use crate::error::StoreError;
use crate::index::StoreIndex;
use crate::record::{ProvenanceRecord, SequenceNumber};
use crate::segment::{scan_segment, Segment, DEFAULT_SEGMENT_BUDGET};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// Configuration of a [`ProvenanceStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Size budget of a segment before rotation, in bytes.
    pub segment_budget: usize,
    /// Whether every append is synced to stable storage (slow, durable) or
    /// only flushed on [`ProvenanceStore::sync`] and rotation.
    pub sync_every_append: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_budget: DEFAULT_SEGMENT_BUDGET,
            sync_every_append: false,
        }
    }
}

/// Summary statistics of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of records held.
    pub records: usize,
    /// Number of segment files (including the active one).
    pub segments: usize,
    /// Approximate bytes on disk.
    pub bytes: usize,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records in {} segments (~{} bytes)",
            self.records, self.segments, self.bytes
        )
    }
}

/// An append-only provenance store backed by segment files.
#[derive(Debug)]
pub struct ProvenanceStore {
    directory: PathBuf,
    config: StoreConfig,
    active: Segment,
    active_id: u64,
    sealed: Vec<PathBuf>,
    next_sequence: SequenceNumber,
    records: BTreeMap<SequenceNumber, ProvenanceRecord>,
    index: StoreIndex,
    bytes_on_disk: usize,
}

/// What [`ProvenanceStore::repair`] did to a store directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Bytes cut off the newest segment (0 when it was clean).
    pub truncated_bytes: usize,
    /// Sealed segments that still contain undecodable frames; repair never
    /// rewrites sealed files, so these need manual attention (or
    /// [`ProvenanceStore::compact`] from a restored copy).
    pub corrupt_sealed_segments: Vec<PathBuf>,
}

impl ProvenanceStore {
    /// Opens (or creates) a store in `directory`, recovering any existing
    /// segments.
    ///
    /// A torn final append (crash mid-write) is repaired automatically.
    /// Corruption that recovery cannot attribute to a torn append — a bad
    /// frame with decodable frames after it, or any bad frame in a sealed
    /// segment — makes `open` refuse, leaving every byte in place; see
    /// [`ProvenanceStore::repair`] for the explicit, destructive way to
    /// accept the data loss and bring such a store back online.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created, a segment
    /// cannot be read, or a segment holds unrepairable corruption.
    pub fn open(directory: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(directory, StoreConfig::default())
    }

    /// Explicitly repairs a store directory that [`ProvenanceStore::open`]
    /// refuses to open: truncates the newest segment to its cleanly
    /// decodable prefix — discarding everything after the first bad frame,
    /// including any later frames that individually decode — and reports
    /// sealed segments that still hold corruption (those are never
    /// modified).
    ///
    /// This is the operator's decision, not recovery's: a crash can leave
    /// a hole in the unsynced tail (a later page flushed, an earlier one
    /// not), which is indistinguishable from mid-file bitrot by file
    /// contents alone.  Nothing after the last `sync` was durable, so
    /// truncating the tail is sound for the crash case; calling this on a
    /// genuinely bitrotten store destroys whatever followed the rot.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory or a segment cannot be read, or
    /// the truncation fails.
    pub fn repair(directory: impl AsRef<Path>) -> Result<RepairReport, StoreError> {
        let directory = directory.as_ref();
        let mut segment_paths = existing_segments(directory)?;
        segment_paths.sort();
        let mut report = RepairReport::default();
        let Some((newest, sealed)) = segment_paths.split_last() else {
            return Ok(report);
        };
        for path in sealed {
            if !scan_segment(path)?.is_clean() {
                report.corrupt_sealed_segments.push(path.clone());
            }
        }
        let scan = scan_segment(newest)?;
        if !scan.is_clean() {
            let disk_len = fs::metadata(newest)?.len() as usize;
            let file = OpenOptions::new().write(true).open(newest)?;
            file.set_len(scan.valid_len as u64)?;
            file.sync_data()?;
            report.truncated_bytes = disk_len - scan.valid_len;
        }
        Ok(report)
    }

    /// Opens a store with an explicit configuration.
    ///
    /// Torn-append repair and the refuse-to-open policy for unrepairable
    /// corruption are as described on [`ProvenanceStore::open`].
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created, a segment
    /// cannot be read, or a segment holds unrepairable corruption (see
    /// [`ProvenanceStore::repair`]).
    pub fn open_with(directory: impl AsRef<Path>, config: StoreConfig) -> Result<Self, StoreError> {
        let directory = directory.as_ref().to_path_buf();
        fs::create_dir_all(&directory)?;
        if !directory.is_dir() {
            return Err(StoreError::InvalidDirectory(
                directory.display().to_string(),
            ));
        }
        let mut segment_paths = existing_segments(&directory)?;
        segment_paths.sort();
        let mut records = BTreeMap::new();
        let mut bytes_on_disk = 0usize;
        for (position, path) in segment_paths.iter().enumerate() {
            let scan = scan_segment(path)?;
            let disk_len = fs::metadata(path).map(|m| m.len() as usize).unwrap_or(0);
            let is_last = position == segment_paths.len() - 1;
            match scan.error {
                // A torn tail of the newest segment is an append
                // interrupted by a crash: keep the valid prefix and
                // truncate the partial frame away, so that new appends
                // cannot land after unreadable bytes and be lost on the
                // next recovery.
                Some(_) if is_last && scan.torn_tail => {
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(scan.valid_len as u64)?;
                    file.sync_data()?;
                    bytes_on_disk += scan.valid_len;
                }
                // Anything else is corruption that recovery cannot repair:
                // a bad frame with valid frames after it (bitrot, partial
                // sector rewrite) in the newest segment, or any decode
                // error in a sealed segment, which is never written again
                // and so can never have a legitimately torn tail.  Refuse
                // to open rather than silently serving a partial store:
                // the file is left untouched as evidence for repair.
                Some(error) => return Err(error),
                None => bytes_on_disk += disk_len,
            }
            for record in scan.records {
                records.insert(record.sequence, record);
            }
        }
        let next_sequence = records.keys().next_back().map(|s| s + 1).unwrap_or(1);
        let (active_id, active, sealed) = match segment_paths.last() {
            Some(last) => {
                let id = segment_id(last).unwrap_or(segment_paths.len() as u64);
                (
                    id,
                    Segment::open_append(last)?,
                    segment_paths[..segment_paths.len() - 1].to_vec(),
                )
            }
            None => {
                let id = 1;
                let path = segment_path(&directory, id);
                (id, Segment::create(&path)?, Vec::new())
            }
        };
        let index = StoreIndex::rebuild(records.values());
        Ok(ProvenanceStore {
            directory,
            config,
            active,
            active_id,
            sealed,
            next_sequence,
            records,
            index,
            bytes_on_disk,
        })
    }

    /// The directory backing the store.
    pub fn directory(&self) -> &Path {
        &self.directory
    }

    /// The configuration in use.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Appends a record, assigning and returning its sequence number.
    ///
    /// # Errors
    ///
    /// Returns an error if the write fails.
    pub fn append(&mut self, mut record: ProvenanceRecord) -> Result<SequenceNumber, StoreError> {
        record.sequence = self.next_sequence;
        self.next_sequence += 1;
        let written = self.active.append(&record)?;
        self.bytes_on_disk += written;
        if self.config.sync_every_append {
            self.active.sync()?;
        }
        self.index.insert(&record);
        let seq = record.sequence;
        self.records.insert(seq, record);
        if self.active.is_full(self.config.segment_budget) {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// Appends every record produced by an iterator, returning the sequence
    /// number of the last one appended (if any).
    ///
    /// # Errors
    ///
    /// Returns an error if any write fails.
    pub fn append_all(
        &mut self,
        records: impl IntoIterator<Item = ProvenanceRecord>,
    ) -> Result<Option<SequenceNumber>, StoreError> {
        let mut last = None;
        for record in records {
            last = Some(self.append(record)?);
        }
        Ok(last)
    }

    /// Flushes and syncs the active segment.
    ///
    /// # Errors
    ///
    /// Returns an error if the sync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.active.sync()
    }

    /// Seals the active segment and starts a new one.
    ///
    /// # Errors
    ///
    /// Returns an error if the new segment cannot be created.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        self.active.sync()?;
        self.sealed.push(self.active.path().to_path_buf());
        self.active_id += 1;
        let path = segment_path(&self.directory, self.active_id);
        self.active = Segment::create(path)?;
        Ok(())
    }

    /// Looks up a record by sequence number.
    pub fn get(&self, sequence: SequenceNumber) -> Option<&ProvenanceRecord> {
        self.records.get(&sequence)
    }

    /// Looks up several records by sequence number, skipping unknown ones.
    pub fn get_many<'a>(
        &'a self,
        sequences: impl IntoIterator<Item = SequenceNumber> + 'a,
    ) -> impl Iterator<Item = &'a ProvenanceRecord> + 'a {
        sequences.into_iter().filter_map(|s| self.records.get(&s))
    }

    /// Iterates over all records in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &ProvenanceRecord> {
        self.records.values()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The secondary indexes.
    pub fn index(&self) -> &StoreIndex {
        &self.index
    }

    /// A query handle over this store.
    ///
    /// Equivalent to `StoreQuery::new(&store)`; callers that serve many
    /// audit requests (the `piprov-audit` engine) create one handle per
    /// request under their read lock.
    pub fn query(&self) -> crate::query::StoreQuery<'_> {
        crate::query::StoreQuery::new(self)
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: self.records.len(),
            segments: self.sealed.len() + 1,
            bytes: self.bytes_on_disk,
        }
    }

    /// Rewrites the store keeping only records accepted by `keep`,
    /// compacting everything into a single fresh segment and dropping the
    /// old ones.  Sequence numbers are preserved.
    ///
    /// # Errors
    ///
    /// Returns an error if rewriting fails; the original segments are left
    /// in place in that case.
    pub fn compact(&mut self, keep: impl Fn(&ProvenanceRecord) -> bool) -> Result<(), StoreError> {
        let kept: Vec<ProvenanceRecord> =
            self.records.values().filter(|r| keep(r)).cloned().collect();
        self.active_id += 1;
        let path = segment_path(&self.directory, self.active_id);
        let mut fresh = Segment::create(&path)?;
        let mut bytes = 0usize;
        for record in &kept {
            bytes += fresh.append(record)?;
        }
        fresh.sync()?;
        // Swap in the new state, then remove the old files.
        let old_paths: Vec<PathBuf> = self
            .sealed
            .drain(..)
            .chain(std::iter::once(self.active.path().to_path_buf()))
            .collect();
        self.active = fresh;
        self.records = kept.into_iter().map(|r| (r.sequence, r)).collect();
        self.index = StoreIndex::rebuild(self.records.values());
        self.bytes_on_disk = bytes;
        for path in old_paths {
            let _ = fs::remove_file(path);
        }
        Ok(())
    }
}

fn segment_path(directory: &Path, id: u64) -> PathBuf {
    directory.join(format!("seg-{:06}.plog", id))
}

fn segment_id(path: &Path) -> Option<u64> {
    let name = path.file_stem()?.to_str()?;
    name.strip_prefix("seg-")?.parse().ok()
}

fn existing_segments(directory: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(directory)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().map(|e| e == "plog").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use piprov_core::name::{Channel, Principal};
    use piprov_core::provenance::{Event, Provenance};
    use piprov_core::value::Value;

    fn record(t: u64, principal: &str, value: &str) -> ProvenanceRecord {
        ProvenanceRecord::new(
            t,
            principal,
            Operation::Send,
            "m",
            Value::Channel(Channel::new(value)),
            Provenance::single(Event::output(
                Principal::new(principal),
                Provenance::empty(),
            )),
        )
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("piprov-store-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_assigns_monotone_sequence_numbers() {
        let dir = temp_dir("seq");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let s1 = store.append(record(1, "a", "v")).unwrap();
        let s2 = store.append(record(2, "b", "w")).unwrap();
        assert!(s2 > s1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(s1).unwrap().principal, Principal::new("a"));
        assert!(store.get(999).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_restores_records_and_indexes() {
        let dir = temp_dir("recovery");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            for i in 0..20 {
                store
                    .append(record(i, if i % 2 == 0 { "a" } else { "b" }, "v"))
                    .unwrap();
            }
            store.sync().unwrap();
        }
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 20);
        assert_eq!(store.index().by_principal(&Principal::new("a")).len(), 10);
        assert_eq!(store.stats().segments, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_numbers_continue_after_recovery() {
        let dir = temp_dir("resume");
        let last = {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            store.append(record(1, "a", "v")).unwrap();
            store.append(record(2, "a", "w")).unwrap()
        };
        let mut store = ProvenanceStore::open(&dir).unwrap();
        let next = store.append(record(3, "a", "u")).unwrap();
        assert_eq!(next, last + 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_creates_new_segments() {
        let dir = temp_dir("rotate");
        let config = StoreConfig {
            segment_budget: 256,
            sync_every_append: false,
        };
        let mut store = ProvenanceStore::open_with(&dir, config).unwrap();
        for i in 0..50 {
            store.append(record(i, "a", "v")).unwrap();
        }
        assert!(store.stats().segments > 1, "{}", store.stats());
        // All records still readable after reopening.
        drop(store);
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 50);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_all_returns_last_sequence() {
        let dir = temp_dir("append-all");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        let last = store
            .append_all((0..5).map(|i| record(i, "a", "v")))
            .unwrap();
        assert_eq!(last, Some(5));
        assert_eq!(store.append_all(std::iter::empty()).unwrap(), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_keeps_only_selected_records() {
        let dir = temp_dir("compact");
        let mut store = ProvenanceStore::open_with(
            &dir,
            StoreConfig {
                segment_budget: 256,
                sync_every_append: false,
            },
        )
        .unwrap();
        for i in 0..40 {
            store
                .append(record(i, if i % 4 == 0 { "keep" } else { "drop" }, "v"))
                .unwrap();
        }
        store
            .compact(|r| r.principal == Principal::new("keep"))
            .unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(store.stats().segments, 1);
        // Recovery after compaction sees only the kept records.
        drop(store);
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 10);
        assert!(store.iter().all(|r| r.principal == Principal::new("keep")));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_display() {
        let dir = temp_dir("stats");
        let mut store = ProvenanceStore::open(&dir).unwrap();
        store.append(record(1, "a", "v")).unwrap();
        let shown = store.stats().to_string();
        assert!(shown.contains("1 records"));
        fs::remove_dir_all(&dir).ok();
    }

    /// Truncates the highest-numbered segment file by `cut` bytes,
    /// simulating a crash that tore the last append mid-record.
    fn tear_last_segment(dir: &Path, cut: u64) {
        let mut segments = existing_segments(dir).unwrap();
        segments.sort();
        let last = segments.last().expect("store has at least one segment");
        let file = OpenOptions::new().write(true).open(last).unwrap();
        let len = file.metadata().unwrap().len();
        assert!(cut < len, "tear must leave a partial frame behind");
        file.set_len(len - cut).unwrap();
    }

    #[test]
    fn torn_write_recovery_drops_only_the_torn_record() {
        let dir = temp_dir("torn-write");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            for i in 0..10 {
                store.append(record(i, "a", &format!("v{}", i))).unwrap();
            }
            store.sync().unwrap();
        }
        // Cut 3 bytes off the tail: the final record's frame is torn, every
        // earlier record is untouched.
        tear_last_segment(&dir, 3);
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 9, "exactly the torn record is dropped");
        for (seq, i) in (1..=9u64).zip(0..) {
            let recovered = store.get(seq).unwrap();
            assert_eq!(recovered.logical_time, i);
            assert_eq!(
                recovered.value,
                Value::Channel(Channel::new(format!("v{}", i)))
            );
        }
        assert!(store.get(10).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_in_last_segment_leaves_sealed_segments_whole() {
        let dir = temp_dir("torn-multi");
        let written = {
            let mut store = ProvenanceStore::open_with(
                &dir,
                StoreConfig {
                    segment_budget: 256,
                    sync_every_append: false,
                },
            )
            .unwrap();
            for i in 0..50 {
                store.append(record(i, "a", "v")).unwrap();
            }
            // An append can land exactly on a rotation boundary, leaving a
            // fresh empty active segment; keep appending until the newest
            // segment holds a record so the tear hits a partial frame.
            let mut extra = 50;
            loop {
                store.sync().unwrap();
                let mut segments = existing_segments(&dir).unwrap();
                segments.sort();
                let last_len = fs::metadata(segments.last().unwrap()).unwrap().len();
                if last_len > 2 {
                    break;
                }
                store.append(record(extra, "a", "v")).unwrap();
                extra += 1;
            }
            assert!(store.stats().segments > 1, "test needs several segments");
            store.len()
        };
        tear_last_segment(&dir, 2);
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(
            store.len(),
            written - 1,
            "only the torn tail record is lost"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_refuses_to_open_and_preserves_the_file() {
        let dir = temp_dir("midfile-corrupt");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            for i in 0..5 {
                store.append(record(i, "a", "v")).unwrap();
            }
            store.sync().unwrap();
        }
        // Flip a byte inside the FIRST record's body (well past the 8-byte
        // frame header, so both length prefixes stay intact): the CRC
        // breaks while four complete, valid frames follow.
        let mut segments = existing_segments(&dir).unwrap();
        segments.sort();
        let path = segments.last().unwrap().clone();
        let mut contents = fs::read(&path).unwrap();
        let len_before = contents.len();
        contents[12] ^= 0xFF;
        fs::write(&path, &contents).unwrap();

        let result = ProvenanceStore::open(&dir);
        assert!(
            result.is_err(),
            "mid-file corruption must refuse to open, not truncate"
        );
        assert_eq!(
            fs::metadata(&path).unwrap().len() as usize,
            len_before,
            "the corrupt file is preserved as evidence"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_length_prefix_midfile_refuses_to_open() {
        let dir = temp_dir("midfile-badlen");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            for i in 0..5 {
                store.append(record(i, "a", "v")).unwrap();
            }
            store.sync().unwrap();
        }
        // Inflate the second frame's length prefix: the bad frame claims
        // to run past end-of-file, but three durable records follow it and
        // must not be truncated away.
        let mut segments = existing_segments(&dir).unwrap();
        segments.sort();
        let path = segments.last().unwrap().clone();
        let mut contents = fs::read(&path).unwrap();
        let len_before = contents.len();
        let first_frame_len = {
            // The first record the store persisted: logical time 0, and
            // append assigned it sequence 1.
            let mut first = record(0, "a", "v");
            first.sequence = 1;
            crate::codec::encode_framed(&first).len()
        };
        contents[first_frame_len] = 0xFF;
        fs::write(&path, &contents).unwrap();

        assert!(ProvenanceStore::open(&dir).is_err());
        assert_eq!(
            fs::metadata(&path).unwrap().len() as usize,
            len_before,
            "no byte of the suspect file is destroyed"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_hole_in_unsynced_tail_refuses_then_repairs() {
        let dir = temp_dir("crash-hole");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            for i in 0..3 {
                store.append(record(i, "a", "v")).unwrap();
            }
            store.sync().unwrap();
        }
        // Simulate a crash where the OS flushed a LATER page of the
        // unsynced tail but not an earlier one: garbage where frame A
        // would be, followed by a fully valid frame C.
        let mut segments = existing_segments(&dir).unwrap();
        segments.sort();
        let path = segments.last().unwrap().clone();
        let mut contents = fs::read(&path).unwrap();
        let synced_len = contents.len();
        let mut unflushed = record(7, "a", "v");
        unflushed.sequence = 4;
        let valid_frame = crate::codec::encode_framed(&unflushed);
        contents.extend_from_slice(&vec![0u8; valid_frame.len()]); // the hole
        contents.extend_from_slice(&valid_frame);
        fs::write(&path, &contents).unwrap();

        // File contents alone cannot distinguish this from bitrot, so open
        // refuses rather than destroying data…
        assert!(ProvenanceStore::open(&dir).is_err());
        // …and the operator's explicit repair truncates the unsynced tail
        // and brings the store back.
        let report = ProvenanceStore::repair(&dir).unwrap();
        assert_eq!(report.truncated_bytes, 2 * valid_frame.len());
        assert!(report.corrupt_sealed_segments.is_empty());
        assert_eq!(
            fs::metadata(&path).unwrap().len() as usize,
            synced_len,
            "repair keeps exactly the synced prefix"
        );
        let mut store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        store.append(record(9, "b", "w")).unwrap();
        store.sync().unwrap();
        drop(store);
        assert_eq!(ProvenanceStore::open(&dir).unwrap().len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_on_a_clean_store_is_a_no_op() {
        let dir = temp_dir("repair-clean");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            store.append(record(1, "a", "v")).unwrap();
            store.sync().unwrap();
        }
        let report = ProvenanceStore::repair(&dir).unwrap();
        assert_eq!(report, RepairReport::default());
        assert_eq!(ProvenanceStore::open(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_a_sealed_segment_refuses_to_open() {
        let dir = temp_dir("sealed-corrupt");
        {
            let mut store = ProvenanceStore::open_with(
                &dir,
                StoreConfig {
                    segment_budget: 256,
                    sync_every_append: false,
                },
            )
            .unwrap();
            for i in 0..50 {
                store.append(record(i, "a", "v")).unwrap();
            }
            store.sync().unwrap();
            assert!(store.stats().segments > 1, "test needs a sealed segment");
        }
        // Flip a byte inside the FIRST (sealed) segment's first record
        // body: sealed segments are never legitimately torn, so recovery
        // must refuse rather than silently serve a partial store.
        let mut segments = existing_segments(&dir).unwrap();
        segments.sort();
        let sealed = segments.first().unwrap().clone();
        let mut contents = fs::read(&sealed).unwrap();
        contents[12] ^= 0xFF;
        fs::write(&sealed, &contents).unwrap();

        assert!(ProvenanceStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_torn_tail_so_appends_survive_the_next_reopen() {
        let dir = temp_dir("torn-resume");
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            for i in 0..5 {
                store.append(record(i, "a", "v")).unwrap();
            }
            store.sync().unwrap();
        }
        tear_last_segment(&dir, 4);
        {
            let mut store = ProvenanceStore::open(&dir).unwrap();
            assert_eq!(store.len(), 4);
            // Appending after recovery must land where the torn frame was
            // truncated, not after leftover garbage.
            store.append(record(99, "b", "w")).unwrap();
            store.sync().unwrap();
        }
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 5, "post-recovery append survives a reopen");
        assert_eq!(
            store
                .iter()
                .filter(|r| r.principal == Principal::new("b"))
                .count(),
            1
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_every_append_is_durable_without_explicit_sync() {
        let dir = temp_dir("durable");
        {
            let mut store = ProvenanceStore::open_with(
                &dir,
                StoreConfig {
                    segment_budget: DEFAULT_SEGMENT_BUDGET,
                    sync_every_append: true,
                },
            )
            .unwrap();
            store.append(record(1, "a", "v")).unwrap();
            // No explicit sync; drop without flushing the BufWriter would
            // normally lose the record, but sync_every_append persisted it.
        }
        let store = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
