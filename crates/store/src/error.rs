//! Error type for the provenance store.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors raised by the provenance store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A stored frame failed its CRC check.
    ChecksumMismatch,
    /// A stored frame could not be decoded.
    Corrupt(String),
    /// The store directory does not exist or is not a directory.
    InvalidDirectory(String),
    /// A query referenced a sequence number that does not exist.
    UnknownSequence(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {}", e),
            StoreError::ChecksumMismatch => write!(f, "record checksum mismatch"),
            StoreError::Corrupt(what) => write!(f, "corrupt record: {}", what),
            StoreError::InvalidDirectory(path) => {
                write!(f, "invalid store directory: {}", path)
            }
            StoreError::UnknownSequence(seq) => write!(f, "unknown sequence number {}", seq),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        assert_eq!(
            StoreError::ChecksumMismatch.to_string(),
            "record checksum mismatch"
        );
        assert!(StoreError::Corrupt("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(StoreError::UnknownSequence(9).to_string().contains('9'));
        assert!(StoreError::InvalidDirectory("/nope".into())
            .to_string()
            .contains("/nope"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let err: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(err.to_string().contains("gone"));
        assert!(err.source().is_some());
        assert!(StoreError::ChecksumMismatch.source().is_none());
    }
}
