//! Binary encoding of provenance records.
//!
//! Each record is framed as
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────┐
//! │ len u32 │ crc u32 │ body (len bytes)             │
//! └─────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! where the CRC covers the body.  The body starts with a one-byte
//! **format version tag** followed by length-prefixed fields in a fixed
//! order; the two versions differ only in how the provenance annotation is
//! laid out:
//!
//! * [`BodyFormat::LegacyPreorder`] (tag 1) — the original format: the
//!   provenance *tree* as a preorder `(depth, principal, direction)` list
//!   (see [`crate::record::flatten_provenance`]).  Record size is
//!   O(`total_size`), i.e. proportional to the logical tree, which blows
//!   up exponentially under channel-chained histories.
//! * [`BodyFormat::Dag`] (tag 2, the default) — the provenance *DAG*:
//!   every distinct interned node is encoded exactly once, in postorder,
//!   and refers to its channel provenance and tail by back-reference.
//!   Record size is O(distinct nodes), matching the in-memory sharing of
//!   the interner.
//!
//! Bodies written before the version tag existed are still readable: the
//! untagged format began with the record's `u64` sequence number, whose
//! first byte is 0 for any sequence below 2⁵⁶, and 0 is not a valid tag —
//! so the decoder treats a leading 0 as an untagged preorder body.  All
//! formats are self-contained (decoding never requires information outside
//! the frame) and remain readable forever; only the encoder's default
//! moved to the DAG format.

use crate::error::StoreError;
use crate::record::{
    direction_from_tag, direction_tag, flatten_provenance, unflatten_provenance, Operation,
    ProvenanceRecord,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::{Direction, Event, ProvId, Provenance};
use piprov_core::value::Value;
use std::collections::HashMap;

/// Magic byte identifying a value stored as a channel name.
const VALUE_CHANNEL: u8 = 0;
/// Magic byte identifying a value stored as a principal name.
const VALUE_PRINCIPAL: u8 = 1;

/// How a record body lays out the provenance annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BodyFormat {
    /// Version 1: preorder expansion of the provenance tree (the seed
    /// format, O(tree) sized).  Kept readable for old segments; no longer
    /// written by default.
    LegacyPreorder,
    /// Version 2: one entry per distinct interned DAG node with
    /// back-references (O(DAG) sized).  The default.
    #[default]
    Dag,
}

impl BodyFormat {
    /// The on-disk version tag.
    pub fn tag(self) -> u8 {
        match self {
            BodyFormat::LegacyPreorder => 1,
            BodyFormat::Dag => 2,
        }
    }

    /// Inverse of [`BodyFormat::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(BodyFormat::LegacyPreorder),
            2 => Some(BodyFormat::Dag),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE polynomial, bitwise implementation — fast enough for the
/// record sizes involved and dependency-free).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Writes a length-prefixed (`u16`) UTF-8 string.
///
/// Shared with the wire codec of `piprov-serve`: both layers speak the same
/// primitive vocabulary, so a record travels the socket and the segment file
/// in one encoding.  Strings longer than `u16::MAX` bytes are not
/// representable: they are **truncated at the last UTF-8 boundary that
/// fits** (debug builds assert first) rather than writing a wrapped length
/// prefix, so an absurd name can never desynchronize the surrounding frame
/// or poison a segment.  Callers hold names (principals, channels, pattern
/// names), which are short.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "name too long for u16 prefix");
    let mut len = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    buf.put_u16(len as u16);
    buf.put_slice(&s.as_bytes()[..len]);
}

/// Reads a string written by [`put_str`], validating UTF-8 and bounds.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on truncation or invalid UTF-8.
pub fn get_str(buf: &mut Bytes) -> Result<String, StoreError> {
    if buf.remaining() < 2 {
        return Err(StoreError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("truncated string body".into()));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| StoreError::Corrupt("invalid utf-8 in record".into()))
}

/// Writes a tagged [`Value`] (channel or principal name).
///
/// Reused by the `piprov-serve` wire codec; see [`put_str`].
pub fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Channel(c) => {
            buf.put_u8(VALUE_CHANNEL);
            put_str(buf, c.as_str());
        }
        Value::Principal(p) => {
            buf.put_u8(VALUE_PRINCIPAL);
            put_str(buf, p.as_str());
        }
    }
}

/// Reads a value written by [`put_value`].
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on truncation or an unknown tag.
pub fn get_value(buf: &mut Bytes) -> Result<Value, StoreError> {
    if buf.remaining() < 1 {
        return Err(StoreError::Corrupt("truncated value tag".into()));
    }
    match buf.get_u8() {
        VALUE_CHANNEL => Ok(Value::Channel(Channel::new(get_str(buf)?))),
        VALUE_PRINCIPAL => Ok(Value::Principal(Principal::new(get_str(buf)?))),
        other => Err(StoreError::Corrupt(format!("unknown value tag {}", other))),
    }
}

/// Writes the provenance section of a legacy (preorder) body.
fn put_provenance_preorder(buf: &mut BytesMut, provenance: &Provenance) {
    let flat = flatten_provenance(provenance);
    buf.put_u32(flat.len() as u32);
    for (depth, event) in &flat {
        buf.put_u32(*depth);
        buf.put_u8(direction_tag(event.direction));
        put_str(buf, event.principal.as_str());
    }
}

/// Reads the provenance section of a legacy (preorder) body.
fn get_provenance_preorder(buf: &mut Bytes) -> Result<Provenance, StoreError> {
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("truncated provenance length".into()));
    }
    let count = buf.get_u32() as usize;
    // A valid entry consumes at least 7 bytes; cap the pre-allocation so a
    // corrupt count cannot request unbounded memory before the bounds
    // checks below reject it.
    let mut flat = Vec::with_capacity(count.min(buf.remaining() / 7 + 1));
    for _ in 0..count {
        if buf.remaining() < 5 {
            return Err(StoreError::Corrupt("truncated provenance entry".into()));
        }
        let depth = buf.get_u32();
        let direction = direction_from_tag(buf.get_u8())
            .ok_or_else(|| StoreError::Corrupt("unknown direction tag".into()))?;
        let p = Principal::new(get_str(buf)?);
        let event = match direction {
            Direction::Output => Event::output(p, Provenance::empty()),
            Direction::Input => Event::input(p, Provenance::empty()),
        };
        flat.push((depth, event));
    }
    Ok(unflatten_provenance(&flat))
}

/// Writes the provenance section of a DAG body: one entry per distinct
/// interned node, children (channel provenance and tail) before parents,
/// then the root reference.  Reference 0 is `ε`; reference `k` is the
/// `k`-th node of the section (1-based).
fn put_provenance_dag(buf: &mut BytesMut, provenance: &Provenance, nodes: &[Provenance]) {
    let mut index: HashMap<ProvId, u32> = HashMap::with_capacity(nodes.len());
    let reference = |index: &HashMap<ProvId, u32>, p: &Provenance| -> u32 {
        if p.is_empty() {
            0
        } else {
            *index.get(&p.id()).expect("postorder lists children first")
        }
    };
    buf.put_u32(nodes.len() as u32);
    for (i, node) in nodes.iter().enumerate() {
        let event = node.head().expect("dag nodes are non-empty");
        let tail = node.tail().expect("dag nodes are non-empty");
        buf.put_u8(direction_tag(event.direction));
        put_str(buf, event.principal.as_str());
        buf.put_u32(reference(&index, &event.channel_provenance));
        buf.put_u32(reference(&index, tail));
        index.insert(node.id(), (i + 1) as u32);
    }
    buf.put_u32(reference(&index, provenance));
}

/// Reads the provenance section of a DAG body, rebuilding nodes through
/// the interner so the decoded value shares structure with everything else
/// in the process.
fn get_provenance_dag(buf: &mut Bytes) -> Result<Provenance, StoreError> {
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt(
            "truncated provenance node count".into(),
        ));
    }
    let count = buf.get_u32() as usize;
    // A valid node consumes at least 11 bytes; cap the pre-allocation so a
    // corrupt count cannot request unbounded memory before the bounds
    // checks below reject it.
    let mut built: Vec<Provenance> = Vec::with_capacity(count.min(buf.remaining() / 11) + 1);
    built.push(Provenance::empty());
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(StoreError::Corrupt("truncated provenance node".into()));
        }
        let direction = direction_from_tag(buf.get_u8())
            .ok_or_else(|| StoreError::Corrupt("unknown direction tag".into()))?;
        let principal = Principal::new(get_str(buf)?);
        if buf.remaining() < 8 {
            return Err(StoreError::Corrupt("truncated provenance node refs".into()));
        }
        let channel_ref = buf.get_u32() as usize;
        let tail_ref = buf.get_u32() as usize;
        if channel_ref >= built.len() || tail_ref >= built.len() {
            return Err(StoreError::Corrupt(
                "provenance node references a later node".into(),
            ));
        }
        let channel = built[channel_ref].clone();
        let event = match direction {
            Direction::Output => Event::output(principal, channel),
            Direction::Input => Event::input(principal, channel),
        };
        let node = built[tail_ref].prepend(event);
        built.push(node);
    }
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("truncated provenance root".into()));
    }
    let root = buf.get_u32() as usize;
    if root >= built.len() {
        return Err(StoreError::Corrupt(
            "provenance root references a missing node".into(),
        ));
    }
    Ok(built[root].clone())
}

/// Encodes a record body (without framing) in the given format.
pub fn encode_body_with(record: &ProvenanceRecord, format: BodyFormat) -> Bytes {
    // Enumerate the DAG once: both the capacity hint and the provenance
    // section consume the same postorder.
    let dag_nodes = match format {
        BodyFormat::Dag => Some(record.provenance.dag_nodes()),
        BodyFormat::LegacyPreorder => None,
    };
    let base = 80
        + record.channel.as_str().len()
        + record.value.as_str().len()
        + record.principal.as_str().len();
    let capacity = match &dag_nodes {
        Some(nodes) => base + nodes.len() * 24,
        // The preorder section is O(tree); cap the hint and let the buffer
        // grow, rather than requesting exponential capacity up front.
        None => {
            base + record
                .provenance
                .total_size()
                .saturating_mul(12)
                .min(1 << 16)
        }
    };
    let mut buf = BytesMut::with_capacity(capacity);
    buf.put_u8(format.tag());
    buf.put_u64(record.sequence);
    buf.put_u64(record.logical_time);
    buf.put_u8(record.operation.tag());
    put_str(&mut buf, record.principal.as_str());
    put_str(&mut buf, record.channel.as_str());
    put_value(&mut buf, &record.value);
    match &dag_nodes {
        Some(nodes) => put_provenance_dag(&mut buf, &record.provenance, nodes),
        None => put_provenance_preorder(&mut buf, &record.provenance),
    }
    buf.freeze()
}

/// Encodes a record body (without framing) in the default (DAG) format.
pub fn encode_body(record: &ProvenanceRecord) -> Bytes {
    encode_body_with(record, BodyFormat::default())
}

/// Decodes a record body (without framing), dispatching on its version
/// tag.  Tagged preorder (1) and DAG (2) bodies are accepted, as are
/// untagged bodies written before the version header existed: those begin
/// with the `u64` sequence number, whose first byte is 0 for any sequence
/// below 2⁵⁶ — never a valid tag.
pub fn decode_body(mut buf: Bytes) -> Result<ProvenanceRecord, StoreError> {
    if buf.remaining() < 17 {
        return Err(StoreError::Corrupt("record body too short".into()));
    }
    let format = match buf[0] {
        0 => BodyFormat::LegacyPreorder,
        tag => {
            let format = BodyFormat::from_tag(tag)
                .ok_or_else(|| StoreError::Corrupt("unknown record format version".into()))?;
            buf.advance(1);
            if buf.remaining() < 17 {
                return Err(StoreError::Corrupt("record body too short".into()));
            }
            format
        }
    };
    let sequence = buf.get_u64();
    let logical_time = buf.get_u64();
    let operation = Operation::from_tag(buf.get_u8())
        .ok_or_else(|| StoreError::Corrupt("unknown operation tag".into()))?;
    let principal = Principal::new(get_str(&mut buf)?);
    let channel = Channel::new(get_str(&mut buf)?);
    let value = get_value(&mut buf)?;
    let provenance = match format {
        BodyFormat::LegacyPreorder => get_provenance_preorder(&mut buf)?,
        BodyFormat::Dag => get_provenance_dag(&mut buf)?,
    };
    Ok(ProvenanceRecord {
        sequence,
        logical_time,
        principal,
        operation,
        channel,
        value,
        provenance,
    })
}

/// Encodes a record with framing (length + CRC + body) in the given
/// format.
pub fn encode_framed_with(record: &ProvenanceRecord, format: BodyFormat) -> Bytes {
    let body = encode_body_with(record, format);
    let mut out = BytesMut::with_capacity(body.len() + 8);
    out.put_u32(body.len() as u32);
    out.put_u32(crc32(&body));
    out.put_slice(&body);
    out.freeze()
}

/// Encodes a record with framing (length + CRC + body) in the default
/// (DAG) format.
pub fn encode_framed(record: &ProvenanceRecord) -> Bytes {
    encode_framed_with(record, BodyFormat::default())
}

/// Attempts to decode one framed record from the front of `buf`.
///
/// Returns `Ok(None)` if the buffer does not contain a complete frame
/// (clean end of segment); returns an error if the frame is corrupt.
pub fn decode_framed(buf: &mut Bytes) -> Result<Option<ProvenanceRecord>, StoreError> {
    if buf.remaining() == 0 {
        return Ok(None);
    }
    if buf.remaining() < 8 {
        return Err(StoreError::Corrupt("truncated frame header".into()));
    }
    let len = buf.get_u32() as usize;
    let expected_crc = buf.get_u32();
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("truncated frame body".into()));
    }
    let body = buf.copy_to_bytes(len);
    if crc32(&body) != expected_crc {
        return Err(StoreError::ChecksumMismatch);
    }
    decode_body(body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::provenance::Provenance;

    fn sample_record() -> ProvenanceRecord {
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        let provenance = Provenance::empty()
            .prepend(Event::output(Principal::new("a"), km.clone()))
            .prepend(Event::input(Principal::new("b"), km));
        ProvenanceRecord {
            sequence: 42,
            logical_time: 7,
            principal: Principal::new("b"),
            operation: Operation::Receive,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            provenance,
        }
    }

    /// A record whose provenance tree is exponentially larger than its
    /// DAG: every hop travels on a channel carrying the full history.
    fn chained_record(hops: usize) -> ProvenanceRecord {
        let mut provenance =
            Provenance::single(Event::output(Principal::new("origin"), Provenance::empty()));
        for i in 0..hops {
            let principal = Principal::new(format!("hop{}", i));
            provenance = provenance
                .prepend(Event::output(principal.clone(), provenance.clone()))
                .prepend(Event::input(principal, provenance.clone()));
        }
        ProvenanceRecord {
            sequence: 1,
            logical_time: 1,
            principal: Principal::new("auditor"),
            operation: Operation::Receive,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            provenance,
        }
    }

    #[test]
    fn crc_is_stable_and_sensitive() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), crc32(b"hello"));
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }

    #[test]
    fn body_format_tags_round_trip() {
        for format in [BodyFormat::LegacyPreorder, BodyFormat::Dag] {
            assert_eq!(BodyFormat::from_tag(format.tag()), Some(format));
        }
        assert_eq!(BodyFormat::from_tag(0), None);
        assert_eq!(BodyFormat::from_tag(99), None);
        assert_eq!(BodyFormat::default(), BodyFormat::Dag);
    }

    #[test]
    fn body_round_trip_in_both_formats() {
        let record = sample_record();
        for format in [BodyFormat::LegacyPreorder, BodyFormat::Dag] {
            let body = encode_body_with(&record, format);
            let decoded = decode_body(body).unwrap();
            assert_eq!(decoded, record, "round trip through {:?}", format);
            // Equality above is O(1) id comparison; be explicit that the
            // decoder rebuilt the very same interned node.
            assert_eq!(decoded.provenance.id(), record.provenance.id());
        }
    }

    #[test]
    fn framed_round_trip() {
        let record = sample_record();
        let mut framed = encode_framed(&record);
        let decoded = decode_framed(&mut framed).unwrap().unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decode_framed(&mut framed).unwrap(), None, "buffer consumed");
    }

    #[test]
    fn legacy_frames_remain_readable() {
        let record = sample_record();
        let mut framed = encode_framed_with(&record, BodyFormat::LegacyPreorder);
        let decoded = decode_framed(&mut framed).unwrap().unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn untagged_seed_bodies_remain_readable() {
        // Bodies written before the version header are byte-for-byte a
        // tagged preorder body minus the leading tag: they start with the
        // u64 sequence, whose first byte is 0 below 2⁵⁶.
        let record = sample_record();
        let tagged = encode_body_with(&record, BodyFormat::LegacyPreorder);
        let untagged = Bytes::from(tagged[1..].to_vec());
        assert_eq!(untagged[0], 0, "sequence high byte is 0");
        let decoded = decode_body(untagged).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn multiple_frames_decode_in_sequence() {
        let mut r1 = sample_record();
        r1.sequence = 1;
        let mut r2 = sample_record();
        r2.sequence = 2;
        r2.value = Value::Principal(Principal::new("a"));
        let mut joined = BytesMut::new();
        joined.put_slice(&encode_framed(&r1));
        joined.put_slice(&encode_framed_with(&r2, BodyFormat::LegacyPreorder));
        let mut buf = joined.freeze();
        assert_eq!(decode_framed(&mut buf).unwrap().unwrap(), r1);
        assert_eq!(decode_framed(&mut buf).unwrap().unwrap(), r2);
        assert_eq!(decode_framed(&mut buf).unwrap(), None);
    }

    #[test]
    fn corrupted_crc_is_detected() {
        let record = sample_record();
        let framed = encode_framed(&record);
        let mut bytes = framed.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut buf = Bytes::from(bytes);
        assert!(matches!(
            decode_framed(&mut buf),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncated_frames_are_errors() {
        let record = sample_record();
        let framed = encode_framed(&record);
        let mut truncated = Bytes::from(framed[..framed.len() - 3].to_vec());
        assert!(decode_framed(&mut truncated).is_err());
        let mut tiny = Bytes::from(vec![0u8, 1, 2]);
        assert!(decode_framed(&mut tiny).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let record = sample_record();
        // Unknown operation tag (byte 17: after version + sequence + time).
        let mut body = encode_body(&record).to_vec();
        body[17] = 200;
        assert!(decode_body(Bytes::from(body)).is_err());
        // Unknown format version tag (byte 0).
        let mut body = encode_body(&record).to_vec();
        body[0] = 77;
        assert!(decode_body(Bytes::from(body)).is_err());
    }

    #[test]
    fn dag_body_with_forward_reference_is_rejected() {
        let record = sample_record();
        let body = encode_body(&record);
        // The last 4 bytes are the root reference; point it past the node
        // list.
        let mut bytes = body.to_vec();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_body(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn empty_provenance_encodes_compactly() {
        let record = ProvenanceRecord {
            sequence: 1,
            logical_time: 1,
            principal: Principal::new("a"),
            operation: Operation::Send,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            provenance: Provenance::empty(),
        };
        let body = encode_body(&record);
        let decoded = decode_body(body).unwrap();
        assert!(decoded.provenance.is_empty());
    }

    #[test]
    fn dag_encoding_of_shared_provenance_is_exponentially_smaller() {
        let record = chained_record(8);
        assert!(
            record.provenance.total_size() > 1 << 8,
            "tree is exponential: {}",
            record.provenance.total_size()
        );
        let dag = encode_body_with(&record, BodyFormat::Dag);
        let legacy = encode_body_with(&record, BodyFormat::LegacyPreorder);
        assert!(
            dag.len() < legacy.len(),
            "dag {} bytes vs legacy {} bytes",
            dag.len(),
            legacy.len()
        );
        // O(DAG nodes), not O(tree): generous constant per node.
        assert!(dag.len() < 64 * (record.provenance.dag_size() + 4));
        // And the shared record still round-trips exactly.
        let decoded = decode_body(dag).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.provenance.id(), record.provenance.id());
    }
}
