//! Binary encoding of provenance records.
//!
//! Each record is framed as
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────┐
//! │ len u32 │ crc u32 │ body (len bytes)             │
//! └─────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! where the CRC covers the body.  The body is a sequence of
//! length-prefixed fields in a fixed order; provenance sequences are stored
//! as a preorder `(depth, principal, direction)` list (see
//! [`crate::record::flatten_provenance`]).  The format is self-contained:
//! decoding never requires information outside the frame.

use crate::error::StoreError;
use crate::record::{
    direction_from_tag, direction_tag, flatten_provenance, unflatten_provenance, Operation,
    ProvenanceRecord,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use piprov_core::name::{Channel, Principal};
use piprov_core::provenance::Event;
use piprov_core::value::Value;

/// Magic byte identifying a value stored as a channel name.
const VALUE_CHANNEL: u8 = 0;
/// Magic byte identifying a value stored as a principal name.
const VALUE_PRINCIPAL: u8 = 1;

/// CRC-32 (IEEE polynomial, bitwise implementation — fast enough for the
/// record sizes involved and dependency-free).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, StoreError> {
    if buf.remaining() < 2 {
        return Err(StoreError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("truncated string body".into()));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| StoreError::Corrupt("invalid utf-8 in record".into()))
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Channel(c) => {
            buf.put_u8(VALUE_CHANNEL);
            put_str(buf, c.as_str());
        }
        Value::Principal(p) => {
            buf.put_u8(VALUE_PRINCIPAL);
            put_str(buf, p.as_str());
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value, StoreError> {
    if buf.remaining() < 1 {
        return Err(StoreError::Corrupt("truncated value tag".into()));
    }
    match buf.get_u8() {
        VALUE_CHANNEL => Ok(Value::Channel(Channel::new(get_str(buf)?))),
        VALUE_PRINCIPAL => Ok(Value::Principal(Principal::new(get_str(buf)?))),
        other => Err(StoreError::Corrupt(format!("unknown value tag {}", other))),
    }
}

/// Encodes a record body (without framing).
pub fn encode_body(record: &ProvenanceRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(record.estimated_size());
    buf.put_u64(record.sequence);
    buf.put_u64(record.logical_time);
    buf.put_u8(record.operation.tag());
    put_str(&mut buf, record.principal.as_str());
    put_str(&mut buf, record.channel.as_str());
    put_value(&mut buf, &record.value);
    let flat = flatten_provenance(&record.provenance);
    buf.put_u32(flat.len() as u32);
    for (depth, event) in &flat {
        buf.put_u32(*depth);
        buf.put_u8(direction_tag(event.direction));
        put_str(&mut buf, event.principal.as_str());
    }
    buf.freeze()
}

/// Decodes a record body (without framing).
pub fn decode_body(mut buf: Bytes) -> Result<ProvenanceRecord, StoreError> {
    if buf.remaining() < 17 {
        return Err(StoreError::Corrupt("record body too short".into()));
    }
    let sequence = buf.get_u64();
    let logical_time = buf.get_u64();
    let operation = Operation::from_tag(buf.get_u8())
        .ok_or_else(|| StoreError::Corrupt("unknown operation tag".into()))?;
    let principal = Principal::new(get_str(&mut buf)?);
    let channel = Channel::new(get_str(&mut buf)?);
    let value = get_value(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(StoreError::Corrupt("truncated provenance length".into()));
    }
    let count = buf.get_u32() as usize;
    let mut flat = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 5 {
            return Err(StoreError::Corrupt("truncated provenance entry".into()));
        }
        let depth = buf.get_u32();
        let direction = direction_from_tag(buf.get_u8())
            .ok_or_else(|| StoreError::Corrupt("unknown direction tag".into()))?;
        let p = Principal::new(get_str(&mut buf)?);
        let event = match direction {
            piprov_core::provenance::Direction::Output => {
                Event::output(p, piprov_core::provenance::Provenance::empty())
            }
            piprov_core::provenance::Direction::Input => {
                Event::input(p, piprov_core::provenance::Provenance::empty())
            }
        };
        flat.push((depth, event));
    }
    let provenance = unflatten_provenance(&flat);
    Ok(ProvenanceRecord {
        sequence,
        logical_time,
        principal,
        operation,
        channel,
        value,
        provenance,
    })
}

/// Encodes a record with framing (length + CRC + body).
pub fn encode_framed(record: &ProvenanceRecord) -> Bytes {
    let body = encode_body(record);
    let mut out = BytesMut::with_capacity(body.len() + 8);
    out.put_u32(body.len() as u32);
    out.put_u32(crc32(&body));
    out.put_slice(&body);
    out.freeze()
}

/// Attempts to decode one framed record from the front of `buf`.
///
/// Returns `Ok(None)` if the buffer does not contain a complete frame
/// (clean end of segment); returns an error if the frame is corrupt.
pub fn decode_framed(buf: &mut Bytes) -> Result<Option<ProvenanceRecord>, StoreError> {
    if buf.remaining() == 0 {
        return Ok(None);
    }
    if buf.remaining() < 8 {
        return Err(StoreError::Corrupt("truncated frame header".into()));
    }
    let len = buf.get_u32() as usize;
    let expected_crc = buf.get_u32();
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("truncated frame body".into()));
    }
    let body = buf.copy_to_bytes(len);
    if crc32(&body) != expected_crc {
        return Err(StoreError::ChecksumMismatch);
    }
    decode_body(body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::provenance::Provenance;

    fn sample_record() -> ProvenanceRecord {
        let km = Provenance::single(Event::output(Principal::new("c"), Provenance::empty()));
        let provenance = Provenance::empty()
            .prepend(Event::output(Principal::new("a"), km.clone()))
            .prepend(Event::input(Principal::new("b"), km));
        ProvenanceRecord {
            sequence: 42,
            logical_time: 7,
            principal: Principal::new("b"),
            operation: Operation::Receive,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            provenance,
        }
    }

    #[test]
    fn crc_is_stable_and_sensitive() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), crc32(b"hello"));
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }

    #[test]
    fn body_round_trip() {
        let record = sample_record();
        let body = encode_body(&record);
        let decoded = decode_body(body).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn framed_round_trip() {
        let record = sample_record();
        let mut framed = encode_framed(&record);
        let decoded = decode_framed(&mut framed).unwrap().unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decode_framed(&mut framed).unwrap(), None, "buffer consumed");
    }

    #[test]
    fn multiple_frames_decode_in_sequence() {
        let mut r1 = sample_record();
        r1.sequence = 1;
        let mut r2 = sample_record();
        r2.sequence = 2;
        r2.value = Value::Principal(Principal::new("a"));
        let mut joined = BytesMut::new();
        joined.put_slice(&encode_framed(&r1));
        joined.put_slice(&encode_framed(&r2));
        let mut buf = joined.freeze();
        assert_eq!(decode_framed(&mut buf).unwrap().unwrap(), r1);
        assert_eq!(decode_framed(&mut buf).unwrap().unwrap(), r2);
        assert_eq!(decode_framed(&mut buf).unwrap(), None);
    }

    #[test]
    fn corrupted_crc_is_detected() {
        let record = sample_record();
        let framed = encode_framed(&record);
        let mut bytes = framed.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut buf = Bytes::from(bytes);
        assert!(matches!(
            decode_framed(&mut buf),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncated_frames_are_errors() {
        let record = sample_record();
        let framed = encode_framed(&record);
        let mut truncated = Bytes::from(framed[..framed.len() - 3].to_vec());
        assert!(decode_framed(&mut truncated).is_err());
        let mut tiny = Bytes::from(vec![0u8, 1, 2]);
        assert!(decode_framed(&mut tiny).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let record = sample_record();
        let mut body = encode_body(&record).to_vec();
        body[16] = 200; // operation tag
        assert!(decode_body(Bytes::from(body)).is_err());
    }

    #[test]
    fn empty_provenance_encodes_compactly() {
        let record = ProvenanceRecord {
            sequence: 1,
            logical_time: 1,
            principal: Principal::new("a"),
            operation: Operation::Send,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            provenance: Provenance::empty(),
        };
        let body = encode_body(&record);
        let decoded = decode_body(body).unwrap();
        assert!(decoded.provenance.is_empty());
    }
}
