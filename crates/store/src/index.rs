//! In-memory indexes over the record log.
//!
//! The store keeps the authoritative data in its append-only segments; the
//! indexes here are rebuilt on recovery by scanning the segments and are
//! used to answer audit queries without a full scan.

use crate::record::{ProvenanceRecord, SequenceNumber};
use piprov_core::name::{Channel, Principal};
use piprov_core::value::Value;
use std::collections::BTreeMap;

/// Secondary indexes mapping principals, channels and values to the
/// sequence numbers of the records that mention them.
#[derive(Debug, Default, Clone)]
pub struct StoreIndex {
    by_principal: BTreeMap<Principal, Vec<SequenceNumber>>,
    by_channel: BTreeMap<Channel, Vec<SequenceNumber>>,
    by_value: BTreeMap<Value, Vec<SequenceNumber>>,
    /// Principals that appear anywhere in a record's provenance, not just
    /// as the acting principal.
    by_involved_principal: BTreeMap<Principal, Vec<SequenceNumber>>,
}

impl StoreIndex {
    /// An empty index.
    pub fn new() -> Self {
        StoreIndex::default()
    }

    /// Indexes one record.
    pub fn insert(&mut self, record: &ProvenanceRecord) {
        let seq = record.sequence;
        self.by_principal
            .entry(record.principal.clone())
            .or_default()
            .push(seq);
        self.by_channel
            .entry(record.channel.clone())
            .or_default()
            .push(seq);
        self.by_value
            .entry(record.value.clone())
            .or_default()
            .push(seq);
        for p in record.principals_involved() {
            self.by_involved_principal.entry(p).or_default().push(seq);
        }
    }

    /// Rebuilds an index from scratch.
    pub fn rebuild<'a>(records: impl IntoIterator<Item = &'a ProvenanceRecord>) -> Self {
        let mut index = StoreIndex::new();
        for r in records {
            index.insert(r);
        }
        index
    }

    /// Sequence numbers of records where `principal` acted.
    pub fn by_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.by_principal
            .get(principal)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Sequence numbers of records on `channel`.
    pub fn by_channel(&self, channel: &Channel) -> &[SequenceNumber] {
        self.by_channel
            .get(channel)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Sequence numbers of records whose exchanged value is `value`.
    pub fn by_value(&self, value: &Value) -> &[SequenceNumber] {
        self.by_value.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sequence numbers of records whose provenance mentions `principal`
    /// anywhere (acting or historical).
    pub fn by_involved_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.by_involved_principal
            .get(principal)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All principals that ever acted.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.by_principal.keys()
    }

    /// All channels that ever carried a value.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.by_channel.keys()
    }

    /// All distinct values ever exchanged.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.by_value.keys()
    }

    /// Number of index entries (for introspection and tests).
    pub fn entry_count(&self) -> usize {
        self.by_principal.values().map(Vec::len).sum::<usize>()
            + self.by_channel.values().map(Vec::len).sum::<usize>()
            + self.by_value.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use piprov_core::provenance::{Event, Provenance};

    fn record(seq: u64, principal: &str, channel: &str, value: &str) -> ProvenanceRecord {
        ProvenanceRecord {
            sequence: seq,
            logical_time: seq,
            principal: Principal::new(principal),
            operation: Operation::Send,
            channel: Channel::new(channel),
            value: Value::Channel(Channel::new(value)),
            provenance: Provenance::single(Event::output(
                Principal::new("origin"),
                Provenance::empty(),
            )),
        }
    }

    #[test]
    fn indexes_by_all_dimensions() {
        let records = vec![
            record(1, "a", "m", "v"),
            record(2, "b", "m", "w"),
            record(3, "a", "n", "v"),
        ];
        let index = StoreIndex::rebuild(&records);
        assert_eq!(index.by_principal(&Principal::new("a")), &[1, 3]);
        assert_eq!(index.by_principal(&Principal::new("b")), &[2]);
        assert_eq!(index.by_channel(&Channel::new("m")), &[1, 2]);
        assert_eq!(index.by_value(&Value::Channel(Channel::new("v"))), &[1, 3]);
        assert!(index.by_principal(&Principal::new("zz")).is_empty());
        assert_eq!(index.principals().count(), 2);
        assert_eq!(index.channels().count(), 2);
        assert_eq!(index.values().count(), 2);
        assert_eq!(index.entry_count(), 9);
    }

    #[test]
    fn involved_principals_include_provenance_history() {
        let records = vec![record(1, "a", "m", "v")];
        let index = StoreIndex::rebuild(&records);
        assert_eq!(
            index.by_involved_principal(&Principal::new("origin")),
            &[1],
            "the historical sender appears via the provenance"
        );
        assert_eq!(index.by_involved_principal(&Principal::new("a")), &[1]);
    }
}
