//! In-memory indexes over the record log.
//!
//! The store keeps the authoritative data in its append-only segments; the
//! indexes here are rebuilt on recovery by scanning the segments and are
//! used to answer audit queries without a full scan.

use crate::record::{ProvenanceRecord, SequenceNumber};
use piprov_core::name::{Channel, Principal};
use piprov_core::value::Value;
use std::collections::BTreeMap;

/// Secondary indexes mapping principals, channels and values to the
/// sequence numbers of the records that mention them.
#[derive(Debug, Default, Clone)]
pub struct StoreIndex {
    by_principal: BTreeMap<Principal, Vec<SequenceNumber>>,
    by_channel: BTreeMap<Channel, Vec<SequenceNumber>>,
    by_value: BTreeMap<Value, Vec<SequenceNumber>>,
    /// Principals that appear anywhere in a record's provenance, not just
    /// as the acting principal.
    by_involved_principal: BTreeMap<Principal, Vec<SequenceNumber>>,
}

impl StoreIndex {
    /// An empty index.
    pub fn new() -> Self {
        StoreIndex::default()
    }

    /// Indexes one record.
    ///
    /// Posting lists are kept duplicate-free: sequence numbers arrive in
    /// non-decreasing order (appends are monotone; rebuilds replay in
    /// sequence order), so a record that maps to the same key several
    /// times — or an insert replayed for a record already indexed — only
    /// ever tries to append the sequence number the list already ends
    /// with, and checking the tail suffices.
    pub fn insert(&mut self, record: &ProvenanceRecord) {
        let seq = record.sequence;
        push_unique(
            self.by_principal
                .entry(record.principal.clone())
                .or_default(),
            seq,
        );
        push_unique(
            self.by_channel.entry(record.channel.clone()).or_default(),
            seq,
        );
        push_unique(self.by_value.entry(record.value.clone()).or_default(), seq);
        for p in record.principals_involved() {
            push_unique(self.by_involved_principal.entry(p).or_default(), seq);
        }
    }

    /// Rebuilds an index from scratch.
    pub fn rebuild<'a>(records: impl IntoIterator<Item = &'a ProvenanceRecord>) -> Self {
        let mut index = StoreIndex::new();
        for r in records {
            index.insert(r);
        }
        index
    }

    /// Sequence numbers of records where `principal` acted.
    pub fn by_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.by_principal
            .get(principal)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Sequence numbers of records on `channel`.
    pub fn by_channel(&self, channel: &Channel) -> &[SequenceNumber] {
        self.by_channel
            .get(channel)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Sequence numbers of records whose exchanged value is `value`.
    pub fn by_value(&self, value: &Value) -> &[SequenceNumber] {
        self.by_value.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sequence numbers of records whose provenance mentions `principal`
    /// anywhere (acting or historical).
    pub fn by_involved_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.by_involved_principal
            .get(principal)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All principals that ever acted.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.by_principal.keys()
    }

    /// All channels that ever carried a value.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.by_channel.keys()
    }

    /// All distinct values ever exchanged.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.by_value.keys()
    }

    /// Number of index entries (for introspection and tests).
    pub fn entry_count(&self) -> usize {
        self.by_principal.values().map(Vec::len).sum::<usize>()
            + self.by_channel.values().map(Vec::len).sum::<usize>()
            + self.by_value.values().map(Vec::len).sum::<usize>()
    }
}

/// Appends `seq` to a posting list unless it is already the tail entry.
fn push_unique(list: &mut Vec<SequenceNumber>, seq: SequenceNumber) {
    if list.last() != Some(&seq) {
        list.push(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use piprov_core::provenance::{Event, Provenance};

    fn record(seq: u64, principal: &str, channel: &str, value: &str) -> ProvenanceRecord {
        ProvenanceRecord {
            sequence: seq,
            logical_time: seq,
            principal: Principal::new(principal),
            operation: Operation::Send,
            channel: Channel::new(channel),
            value: Value::Channel(Channel::new(value)),
            provenance: Provenance::single(Event::output(
                Principal::new("origin"),
                Provenance::empty(),
            )),
        }
    }

    #[test]
    fn indexes_by_all_dimensions() {
        let records = vec![
            record(1, "a", "m", "v"),
            record(2, "b", "m", "w"),
            record(3, "a", "n", "v"),
        ];
        let index = StoreIndex::rebuild(&records);
        assert_eq!(index.by_principal(&Principal::new("a")), &[1, 3]);
        assert_eq!(index.by_principal(&Principal::new("b")), &[2]);
        assert_eq!(index.by_channel(&Channel::new("m")), &[1, 2]);
        assert_eq!(index.by_value(&Value::Channel(Channel::new("v"))), &[1, 3]);
        assert!(index.by_principal(&Principal::new("zz")).is_empty());
        assert_eq!(index.principals().count(), 2);
        assert_eq!(index.channels().count(), 2);
        assert_eq!(index.values().count(), 2);
        assert_eq!(index.entry_count(), 9);
    }

    #[test]
    fn posting_lists_stay_duplicate_free() {
        // A record whose provenance mentions the same value's carriers
        // repeatedly still yields one posting per list, and replaying the
        // same record through insert (as a segment replay that revisits a
        // frame would) cannot double-count it.
        let km = Provenance::single(Event::output(Principal::new("origin"), Provenance::empty()));
        let r = ProvenanceRecord {
            sequence: 7,
            logical_time: 7,
            principal: Principal::new("origin"),
            operation: Operation::Send,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            // origin appears as actor, as a top-level event and nested in
            // the channel provenance of a later event.
            provenance: Provenance::single(Event::output(Principal::new("origin"), km)),
        };
        let mut index = StoreIndex::new();
        index.insert(&r);
        index.insert(&r);
        assert_eq!(index.by_principal(&Principal::new("origin")), &[7]);
        assert_eq!(index.by_channel(&Channel::new("m")), &[7]);
        assert_eq!(index.by_value(&Value::Channel(Channel::new("v"))), &[7]);
        assert_eq!(index.by_involved_principal(&Principal::new("origin")), &[7]);
        assert_eq!(index.entry_count(), 3);
    }

    #[test]
    fn involved_principals_include_provenance_history() {
        let records = vec![record(1, "a", "m", "v")];
        let index = StoreIndex::rebuild(&records);
        assert_eq!(
            index.by_involved_principal(&Principal::new("origin")),
            &[1],
            "the historical sender appears via the provenance"
        );
        assert_eq!(index.by_involved_principal(&Principal::new("a")), &[1]);
    }
}
