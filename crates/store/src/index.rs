//! In-memory indexes over the record log.
//!
//! The store keeps the authoritative data in its append-only segments; the
//! indexes here are rebuilt on recovery by scanning the segments and are
//! used to answer audit queries without a full scan.
//!
//! Two public index types share one implementation, differing only in how
//! a posting list is stored: [`StoreIndex`] owns plain `Vec` buckets (the
//! store's mutable in-place index), while [`SharedStoreIndex`] puts every
//! bucket behind an [`Arc`] so an *extended* copy structurally shares
//! untouched buckets with its predecessor — the hook the audit engine's
//! MVCC snapshots build on.  Because both are the same generic core, a
//! change to the posting discipline cannot desynchronize them.

use crate::record::{ProvenanceRecord, SequenceNumber};
use piprov_core::name::{Channel, Principal};
use piprov_core::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How one posting list is stored.  `Vec` appends in place;
/// `Arc<Vec<_>>` copies-on-write ([`Arc::make_mut`]) so unshared buckets
/// mutate in place and shared ones are copied exactly when touched.
trait PostingBucket: Default {
    fn push_unique(&mut self, seq: SequenceNumber);
    fn as_slice(&self) -> &[SequenceNumber];
}

impl PostingBucket for Vec<SequenceNumber> {
    /// Appends `seq` unless it is already the tail entry: sequence numbers
    /// arrive in non-decreasing order (appends are monotone; rebuilds
    /// replay in sequence order), so a record that maps to the same key
    /// several times — or an insert replayed for a record already indexed
    /// — only ever tries to append the sequence number the list already
    /// ends with, and checking the tail suffices.
    fn push_unique(&mut self, seq: SequenceNumber) {
        if self.last() != Some(&seq) {
            self.push(seq);
        }
    }

    fn as_slice(&self) -> &[SequenceNumber] {
        self
    }
}

impl PostingBucket for Arc<Vec<SequenceNumber>> {
    fn push_unique(&mut self, seq: SequenceNumber) {
        Arc::make_mut(self).push_unique(seq);
    }

    fn as_slice(&self) -> &[SequenceNumber] {
        self
    }
}

/// The shared index core: every query dimension, generic over bucket
/// storage.
#[derive(Debug, Clone, Default)]
struct IndexCore<B> {
    by_principal: BTreeMap<Principal, B>,
    by_channel: BTreeMap<Channel, B>,
    by_value: BTreeMap<Value, B>,
    /// Principals that appear anywhere in a record's provenance, not just
    /// as the acting principal.
    by_involved_principal: BTreeMap<Principal, B>,
}

impl<B: PostingBucket> IndexCore<B> {
    fn insert(&mut self, record: &ProvenanceRecord) {
        let seq = record.sequence;
        self.by_principal
            .entry(record.principal.clone())
            .or_default()
            .push_unique(seq);
        self.by_channel
            .entry(record.channel.clone())
            .or_default()
            .push_unique(seq);
        self.by_value
            .entry(record.value.clone())
            .or_default()
            .push_unique(seq);
        for p in record.principals_involved() {
            self.by_involved_principal
                .entry(p)
                .or_default()
                .push_unique(seq);
        }
    }

    fn rebuild<'a>(records: impl IntoIterator<Item = &'a ProvenanceRecord>) -> Self
    where
        Self: Default,
    {
        let mut core = Self::default();
        for r in records {
            core.insert(r);
        }
        core
    }

    fn by_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.by_principal
            .get(principal)
            .map(B::as_slice)
            .unwrap_or(&[])
    }

    fn by_channel(&self, channel: &Channel) -> &[SequenceNumber] {
        self.by_channel.get(channel).map(B::as_slice).unwrap_or(&[])
    }

    fn by_value(&self, value: &Value) -> &[SequenceNumber] {
        self.by_value.get(value).map(B::as_slice).unwrap_or(&[])
    }

    fn by_involved_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.by_involved_principal
            .get(principal)
            .map(B::as_slice)
            .unwrap_or(&[])
    }

    /// Acting-principal + channel + value entries (the dimensions
    /// [`entry_count`](StoreIndex::entry_count) has always reported).
    fn entry_count(&self) -> usize {
        self.by_principal
            .values()
            .map(|b| b.as_slice().len())
            .sum::<usize>()
            + self
                .by_channel
                .values()
                .map(|b| b.as_slice().len())
                .sum::<usize>()
            + self
                .by_value
                .values()
                .map(|b| b.as_slice().len())
                .sum::<usize>()
    }
}

/// Secondary indexes mapping principals, channels and values to the
/// sequence numbers of the records that mention them.
#[derive(Debug, Default, Clone)]
pub struct StoreIndex {
    core: IndexCore<Vec<SequenceNumber>>,
}

impl StoreIndex {
    /// An empty index.
    pub fn new() -> Self {
        StoreIndex::default()
    }

    /// Indexes one record.
    ///
    /// Posting lists are kept duplicate-free: sequence numbers arrive in
    /// non-decreasing order (appends are monotone; rebuilds replay in
    /// sequence order), so a record that maps to the same key several
    /// times — or an insert replayed for a record already indexed — only
    /// ever tries to append the sequence number the list already ends
    /// with, and checking the tail suffices.
    pub fn insert(&mut self, record: &ProvenanceRecord) {
        self.core.insert(record);
    }

    /// Rebuilds an index from scratch.
    pub fn rebuild<'a>(records: impl IntoIterator<Item = &'a ProvenanceRecord>) -> Self {
        StoreIndex {
            core: IndexCore::rebuild(records),
        }
    }

    /// Sequence numbers of records where `principal` acted.
    pub fn by_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.core.by_principal(principal)
    }

    /// Sequence numbers of records on `channel`.
    pub fn by_channel(&self, channel: &Channel) -> &[SequenceNumber] {
        self.core.by_channel(channel)
    }

    /// Sequence numbers of records whose exchanged value is `value`.
    pub fn by_value(&self, value: &Value) -> &[SequenceNumber] {
        self.core.by_value(value)
    }

    /// Sequence numbers of records whose provenance mentions `principal`
    /// anywhere (acting or historical).
    pub fn by_involved_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.core.by_involved_principal(principal)
    }

    /// All principals that ever acted.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.core.by_principal.keys()
    }

    /// All channels that ever carried a value.
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.core.by_channel.keys()
    }

    /// All distinct values ever exchanged.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.core.by_value.keys()
    }

    /// Number of index entries (for introspection and tests).
    pub fn entry_count(&self) -> usize {
        self.core.entry_count()
    }
}

/// Snapshot-shareable secondary indexes.
///
/// Same posting discipline as [`StoreIndex`] (one generic implementation
/// serves both), but every bucket lives behind an [`Arc`], so an index
/// *extended* with a batch of new records shares untouched buckets with
/// its predecessor: [`SharedStoreIndex::extended`] clones only the map
/// skeleton (one `Arc` clone per key) and copies just the posting lists
/// the batch actually touches.  This is the structural-sharing hook the
/// audit engine's MVCC snapshots build on — each published snapshot owns
/// an immutable index, and consecutive snapshots share the overwhelming
/// majority of their buckets.
#[derive(Debug, Clone, Default)]
pub struct SharedStoreIndex {
    core: IndexCore<Arc<Vec<SequenceNumber>>>,
}

impl SharedStoreIndex {
    /// An empty index.
    pub fn new() -> Self {
        SharedStoreIndex::default()
    }

    /// Builds an index from scratch.
    pub fn rebuild<'a>(records: impl IntoIterator<Item = &'a ProvenanceRecord>) -> Self {
        SharedStoreIndex {
            core: IndexCore::rebuild(records),
        }
    }

    /// A new index covering `self`'s records plus `records`, sharing every
    /// bucket the batch does not touch with `self` (verifiable with
    /// [`SharedStoreIndex::value_bucket`] / `Arc::ptr_eq`).
    pub fn extended<'a>(&self, records: impl IntoIterator<Item = &'a ProvenanceRecord>) -> Self {
        let mut next = self.clone();
        for r in records {
            next.core.insert(r);
        }
        next
    }

    /// Sequence numbers of records where `principal` acted.
    pub fn by_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.core.by_principal(principal)
    }

    /// Sequence numbers of records on `channel`.
    pub fn by_channel(&self, channel: &Channel) -> &[SequenceNumber] {
        self.core.by_channel(channel)
    }

    /// Sequence numbers of records whose exchanged value is `value`.
    pub fn by_value(&self, value: &Value) -> &[SequenceNumber] {
        self.core.by_value(value)
    }

    /// Sequence numbers of records whose provenance mentions `principal`
    /// anywhere (acting or historical).
    pub fn by_involved_principal(&self, principal: &Principal) -> &[SequenceNumber] {
        self.core.by_involved_principal(principal)
    }

    /// All principals that ever acted.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.core.by_principal.keys()
    }

    /// All distinct values ever exchanged.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.core.by_value.keys()
    }

    /// Number of index entries (for introspection and tests).
    pub fn entry_count(&self) -> usize {
        self.core.entry_count()
    }

    /// The shared bucket behind [`SharedStoreIndex::by_value`], exposed so
    /// sharing across extended indexes is checkable (`Arc::ptr_eq`).
    pub fn value_bucket(&self, value: &Value) -> Option<&Arc<Vec<SequenceNumber>>> {
        self.core.by_value.get(value)
    }

    /// The shared bucket behind [`SharedStoreIndex::by_principal`], exposed
    /// so sharing across extended indexes is checkable (`Arc::ptr_eq`).
    pub fn principal_bucket(&self, principal: &Principal) -> Option<&Arc<Vec<SequenceNumber>>> {
        self.core.by_principal.get(principal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Operation;
    use piprov_core::provenance::{Event, Provenance};

    fn record(seq: u64, principal: &str, channel: &str, value: &str) -> ProvenanceRecord {
        ProvenanceRecord {
            sequence: seq,
            logical_time: seq,
            principal: Principal::new(principal),
            operation: Operation::Send,
            channel: Channel::new(channel),
            value: Value::Channel(Channel::new(value)),
            provenance: Provenance::single(Event::output(
                Principal::new("origin"),
                Provenance::empty(),
            )),
        }
    }

    #[test]
    fn indexes_by_all_dimensions() {
        let records = vec![
            record(1, "a", "m", "v"),
            record(2, "b", "m", "w"),
            record(3, "a", "n", "v"),
        ];
        let index = StoreIndex::rebuild(&records);
        assert_eq!(index.by_principal(&Principal::new("a")), &[1, 3]);
        assert_eq!(index.by_principal(&Principal::new("b")), &[2]);
        assert_eq!(index.by_channel(&Channel::new("m")), &[1, 2]);
        assert_eq!(index.by_value(&Value::Channel(Channel::new("v"))), &[1, 3]);
        assert!(index.by_principal(&Principal::new("zz")).is_empty());
        assert_eq!(index.principals().count(), 2);
        assert_eq!(index.channels().count(), 2);
        assert_eq!(index.values().count(), 2);
        assert_eq!(index.entry_count(), 9);
    }

    #[test]
    fn posting_lists_stay_duplicate_free() {
        // A record whose provenance mentions the same value's carriers
        // repeatedly still yields one posting per list, and replaying the
        // same record through insert (as a segment replay that revisits a
        // frame would) cannot double-count it.
        let km = Provenance::single(Event::output(Principal::new("origin"), Provenance::empty()));
        let r = ProvenanceRecord {
            sequence: 7,
            logical_time: 7,
            principal: Principal::new("origin"),
            operation: Operation::Send,
            channel: Channel::new("m"),
            value: Value::Channel(Channel::new("v")),
            // origin appears as actor, as a top-level event and nested in
            // the channel provenance of a later event.
            provenance: Provenance::single(Event::output(Principal::new("origin"), km)),
        };
        let mut index = StoreIndex::new();
        index.insert(&r);
        index.insert(&r);
        assert_eq!(index.by_principal(&Principal::new("origin")), &[7]);
        assert_eq!(index.by_channel(&Channel::new("m")), &[7]);
        assert_eq!(index.by_value(&Value::Channel(Channel::new("v"))), &[7]);
        assert_eq!(index.by_involved_principal(&Principal::new("origin")), &[7]);
        assert_eq!(index.entry_count(), 3);
    }

    #[test]
    fn shared_index_agrees_with_the_plain_index() {
        let records = vec![
            record(1, "a", "m", "v"),
            record(2, "b", "m", "w"),
            record(3, "a", "n", "v"),
        ];
        let plain = StoreIndex::rebuild(&records);
        let shared = SharedStoreIndex::rebuild(&records);
        for p in ["a", "b", "zz"] {
            assert_eq!(
                plain.by_principal(&Principal::new(p)),
                shared.by_principal(&Principal::new(p))
            );
            assert_eq!(
                plain.by_involved_principal(&Principal::new(p)),
                shared.by_involved_principal(&Principal::new(p))
            );
        }
        assert_eq!(
            plain.by_channel(&Channel::new("m")),
            shared.by_channel(&Channel::new("m"))
        );
        assert_eq!(
            plain.by_value(&Value::Channel(Channel::new("v"))),
            shared.by_value(&Value::Channel(Channel::new("v")))
        );
        assert_eq!(plain.entry_count(), shared.entry_count());
        assert_eq!(shared.principals().count(), 2);
        assert_eq!(shared.values().count(), 2);
    }

    #[test]
    fn extended_shares_untouched_buckets_and_copies_touched_ones() {
        let base = SharedStoreIndex::rebuild(&[record(1, "a", "m", "v"), record(2, "b", "m", "w")]);
        // The batch touches value w (and principal b) but not value v.
        let next = base.extended(&[record(3, "b", "m", "w")]);

        let v = Value::Channel(Channel::new("v"));
        let w = Value::Channel(Channel::new("w"));
        assert!(
            Arc::ptr_eq(
                base.value_bucket(&v).unwrap(),
                next.value_bucket(&v).unwrap()
            ),
            "untouched bucket is shared, not copied"
        );
        assert!(
            !Arc::ptr_eq(
                base.value_bucket(&w).unwrap(),
                next.value_bucket(&w).unwrap()
            ),
            "touched bucket is copied"
        );
        assert!(Arc::ptr_eq(
            base.principal_bucket(&Principal::new("a")).unwrap(),
            next.principal_bucket(&Principal::new("a")).unwrap()
        ));
        // The base index is immutable: extending never mutates it.
        assert_eq!(base.by_value(&w), &[2]);
        assert_eq!(next.by_value(&w), &[2, 3]);
        assert_eq!(next.by_value(&v), &[1]);
        // Extending matches a from-scratch rebuild.
        let rebuilt = SharedStoreIndex::rebuild(&[
            record(1, "a", "m", "v"),
            record(2, "b", "m", "w"),
            record(3, "b", "m", "w"),
        ]);
        assert_eq!(rebuilt.entry_count(), next.entry_count());
        assert_eq!(rebuilt.by_principal(&Principal::new("b")), &[2, 3]);
    }

    #[test]
    fn shared_index_insert_replay_stays_duplicate_free() {
        let base = SharedStoreIndex::rebuild(&[record(7, "a", "m", "v")]);
        let next = base.extended(&[record(7, "a", "m", "v")]);
        assert_eq!(next.by_principal(&Principal::new("a")), &[7]);
        assert_eq!(next.entry_count(), base.entry_count());
    }

    #[test]
    fn involved_principals_include_provenance_history() {
        let records = vec![record(1, "a", "m", "v")];
        let index = StoreIndex::rebuild(&records);
        assert_eq!(
            index.by_involved_principal(&Principal::new("origin")),
            &[1],
            "the historical sender appears via the provenance"
        );
        assert_eq!(index.by_involved_principal(&Principal::new("a")), &[1]);
    }
}
