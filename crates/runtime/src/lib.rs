//! # piprov-runtime
//!
//! A discrete-event **distributed-system simulator** for the provenance
//! calculus.  The paper assigns provenance tracking to "a trusted
//! underlying middleware" (footnote 1); this crate plays that middleware on
//! a simulated deployment:
//!
//! * [`sim`] — the simulation engine: virtual time, a message pool fed by
//!   the network, pluggable tracking modes (full tracking vs stripped
//!   annotations for the overhead baseline);
//! * [`network`] — latency, jitter, loss, duplication and partitions, all
//!   seeded and reproducible;
//! * [`fault`] — fault injection (partitions, provenance forgery);
//! * [`workload`] — system families used by examples, tests and benches
//!   (pipeline, fan-out, ring, the paper's competition and authentication
//!   examples);
//! * [`baseline`] — the paper's manual-tagging strawman and the forgery it
//!   admits;
//! * [`metrics`] — counters reported by the benchmark harness.
//!
//! ```
//! use piprov_core::pattern::TrivialPatterns;
//! use piprov_runtime::network::NetworkConfig;
//! use piprov_runtime::sim::{SimConfig, Simulation};
//! use piprov_runtime::workload;
//!
//! let system = workload::pipeline(3, 2);
//! let mut sim = Simulation::new(&system, TrivialPatterns, SimConfig {
//!     network: NetworkConfig::reliable(),
//!     ..SimConfig::default()
//! });
//! sim.run(10_000)?;
//! assert_eq!(sim.metrics().messages_sent, sim.metrics().messages_delivered);
//! # Ok::<(), piprov_core::reduction::ReductionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod sim;
pub mod workload;

pub use fault::{Fault, FaultPlan};
pub use metrics::SimMetrics;
pub use network::{Delivery, Network, NetworkConfig, VirtualTime};
pub use sim::{DeliverySink, NullSink, SimConfig, SimStop, Simulation, TrackingMode};
