//! Fault injection for simulation runs.
//!
//! Faults model the failure and adversarial scenarios the paper motivates
//! provenance with: silent message loss (network partitions) and forged
//! provenance claims (the introduction's `b[n⟨a, v₂⟩]` identity-forging
//! attack, which the calculus-level tracking prevents but a manual tagging
//! convention cannot).

use crate::network::VirtualTime;
use piprov_core::name::{Channel, Principal};

/// A single injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// From `time` on, everything `principal` sends is dropped.
    PartitionAt {
        /// When the partition starts.
        time: VirtualTime,
        /// The principal being cut off.
        principal: Principal,
    },
    /// At `time`, a previous partition of `principal` is healed.
    HealAt {
        /// When the partition ends.
        time: VirtualTime,
        /// The principal being reconnected.
        principal: Principal,
    },
    /// At `time`, the provenance of every delivered message on `channel`
    /// is overwritten to claim it was sent by `claimed_sender`.
    ForgeOnChannel {
        /// When the forgery happens.
        time: VirtualTime,
        /// The channel whose messages are tampered with.
        channel: Channel,
        /// The identity being forged.
        claimed_sender: Principal,
    },
}

impl Fault {
    /// The virtual time at which the fault fires.
    pub fn time(&self) -> VirtualTime {
        match self {
            Fault::PartitionAt { time, .. }
            | Fault::HealAt { time, .. }
            | Fault::ForgeOnChannel { time, .. } => *time,
        }
    }
}

/// A schedule of faults to inject during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pending: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn push(&mut self, fault: Fault) -> &mut Self {
        self.pending.push(fault);
        self
    }

    /// Builds a plan from a list of faults.
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        FaultPlan { pending: faults }
    }

    /// Number of faults not yet fired.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Removes and returns every fault due at or before `now`.
    pub fn due(&mut self, now: VirtualTime) -> Vec<Fault> {
        let (due, rest): (Vec<Fault>, Vec<Fault>) =
            self.pending.drain(..).partition(|f| f.time() <= now);
        self.pending = rest;
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_in_time_order() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::PartitionAt {
            time: 10,
            principal: Principal::new("a"),
        });
        plan.push(Fault::HealAt {
            time: 20,
            principal: Principal::new("a"),
        });
        assert_eq!(plan.pending(), 2);
        assert!(plan.due(5).is_empty());
        let first = plan.due(10);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].time(), 10);
        assert_eq!(plan.pending(), 1);
        let second = plan.due(100);
        assert_eq!(second.len(), 1);
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn forgery_fault_carries_its_target() {
        let fault = Fault::ForgeOnChannel {
            time: 3,
            channel: Channel::new("n"),
            claimed_sender: Principal::new("a"),
        };
        assert_eq!(fault.time(), 3);
        let plan = FaultPlan::from_faults(vec![fault.clone()]);
        assert_eq!(plan.pending(), 1);
    }
}
