//! The manual-tagging baseline from the paper's introduction.
//!
//! Before introducing calculus-level provenance, the paper shows how
//! principals could emulate it by *convention*: senders attach their own
//! identity to every message (`a[n⟨a, v₁⟩]`) and receivers branch on the
//! tag.  The encoding has two flaws the paper points out:
//!
//! 1. it is cumbersome and muddles the computation; and
//! 2. it cannot be enforced — nothing stops `b` from forging `a`'s tag with
//!    `b[n⟨a, v₂⟩]`.
//!
//! This module implements that encoding so the benchmarks can compare its
//! cost against middleware tracking (experiment E9) and so the forgery
//! example can be demonstrated and contrasted with the calculus-level
//! defence (which a forger cannot subvert because provenance is written by
//! the runtime, not by the sender).

use piprov_core::pattern::AnyPattern;
use piprov_core::process::Process;
use piprov_core::system::System;
use piprov_core::value::Identifier;
use piprov_patterns::{GroupExpr, Pattern};

/// A manually tagged pipeline: every message is a pair `⟨sender, value⟩`
/// and every stage checks the tag against the expected upstream principal
/// before forwarding (re-tagging with its own name).
///
/// Topology mirrors [`crate::workload::pipeline`], so the two are directly
/// comparable in the overhead benchmarks.
pub fn pipeline_manual_tagging(stages: usize, messages: usize) -> System<AnyPattern> {
    let mut parts = Vec::new();
    let outputs: Vec<Process<AnyPattern>> = (0..messages)
        .map(|k| {
            Process::output_tuple(
                Identifier::channel("hop1"),
                vec![
                    Identifier::principal("stage0"),
                    Identifier::channel(format!("v{}", k).as_str()),
                ],
            )
        })
        .collect();
    parts.push(System::located("stage0", Process::par_all(outputs)));
    for i in 1..stages {
        let me = format!("stage{}", i);
        let upstream = format!("stage{}", i - 1);
        let from = format!("hop{}", i);
        let to = format!("hop{}", i + 1);
        // stage_i(tag, x): if tag = upstream then hop_{i+1}<me, x> else 0
        let forward = Process::matching(
            Identifier::variable("tag"),
            Identifier::principal(upstream.as_str()),
            Process::output_tuple(
                Identifier::channel(to.as_str()),
                vec![
                    Identifier::principal(me.as_str()),
                    Identifier::variable("x"),
                ],
            ),
            Process::nil(),
        );
        parts.push(System::located(
            me.as_str(),
            Process::replicate(Process::InputSum {
                channel: Identifier::channel(from.as_str()),
                branches: vec![piprov_core::process::InputBranch::polyadic(
                    vec![(AnyPattern, "tag".into()), (AnyPattern, "x".into())],
                    forward,
                )],
            }),
        ));
    }
    parts.push(System::located(
        "sink",
        Process::replicate(Process::InputSum {
            channel: Identifier::channel(format!("hop{}", stages).as_str()),
            branches: vec![piprov_core::process::InputBranch::polyadic(
                vec![(AnyPattern, "tag".into()), (AnyPattern, "x".into())],
                Process::nil(),
            )],
        }),
    ));
    System::par_all(parts)
}

/// The forgery scenario under manual tagging: `a` sends its value tagged
/// `a`, the adversary `b` sends its own value *also* tagged `a`, and the
/// consumer `c` accepts anything whose tag equals `a`.
///
/// There exist executions in which `c` accepts the forged value — manual
/// tagging provides no authenticity.
pub fn forgery_under_manual_tagging() -> System<AnyPattern> {
    let consumer = Process::InputSum {
        channel: Identifier::channel("n"),
        branches: vec![piprov_core::process::InputBranch::polyadic(
            vec![(AnyPattern, "tag".into()), (AnyPattern, "x".into())],
            Process::matching(
                Identifier::variable("tag"),
                Identifier::principal("a"),
                // Accept: record the acceptance by emitting on `accepted`.
                Process::output(Identifier::channel("accepted"), Identifier::variable("x")),
                Process::nil(),
            ),
        )],
    };
    System::par_all(vec![
        System::located(
            "a",
            Process::output_tuple(
                Identifier::channel("n"),
                vec![Identifier::principal("a"), Identifier::channel("v1")],
            ),
        ),
        System::located(
            "b",
            Process::output_tuple(
                Identifier::channel("n"),
                vec![
                    Identifier::principal("a"), // forged tag
                    Identifier::channel("v2"),
                ],
            ),
        ),
        System::located("c", consumer),
    ])
}

/// The same scenario under calculus-level tracking: the consumer demands
/// that the value was *actually sent by* `a` (`a!Any; Any`), which the
/// runtime-maintained provenance makes unforgeable — `b`'s value can never
/// be accepted.
pub fn forgery_under_provenance_tracking() -> System<Pattern> {
    System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(
                Identifier::channel("n"),
                Pattern::immediately_sent_by(GroupExpr::single("a")),
                "x",
                Process::output(Identifier::channel("accepted"), Identifier::variable("x")),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::interpreter::{Executor, SchedulerPolicy, StopReason};
    use piprov_core::name::Channel;
    use piprov_core::pattern::TrivialPatterns;
    use piprov_core::value::Value;
    use piprov_patterns::SamplePatterns;

    /// Runs a system to quiescence and returns the plain values left in
    /// flight on the given channel.
    fn leftovers<P: Clone, L>(
        system: &System<P>,
        matcher: L,
        channel: &str,
        seed: u64,
    ) -> Vec<Value>
    where
        L: piprov_core::pattern::PatternLanguage<Pattern = P>,
    {
        let mut exec = Executor::new(system, matcher).with_policy(SchedulerPolicy::Random { seed });
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        exec.configuration()
            .messages
            .iter()
            .filter(|m| m.channel == Channel::new(channel))
            .flat_map(|m| m.payload.iter().map(|v| v.value.clone()))
            .collect()
    }

    #[test]
    fn manual_pipeline_delivers_like_the_tracked_one() {
        let s = pipeline_manual_tagging(4, 2);
        let mut exec = Executor::new(&s, TrivialPatterns);
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // 2 messages × 4 hops of sends; matches happen at 3 forwarding stages.
        assert_eq!(exec.stats().sends, 8);
        assert_eq!(exec.stats().matches, 6);
    }

    #[test]
    fn manual_tagging_is_forgeable() {
        // Across schedulings, the consumer sometimes accepts the forged v2.
        let mut accepted_forged = false;
        for seed in 0..20 {
            let accepted = leftovers(
                &forgery_under_manual_tagging(),
                TrivialPatterns,
                "accepted",
                seed,
            );
            if accepted.contains(&Value::Channel(Channel::new("v2"))) {
                accepted_forged = true;
                break;
            }
        }
        assert!(
            accepted_forged,
            "some scheduling must let the forged value through"
        );
    }

    #[test]
    fn provenance_tracking_defeats_the_forgery() {
        // Under calculus-level tracking, no scheduling can make c accept v2:
        // the provenance of b's value records b as the sender.
        for seed in 0..20 {
            let accepted = leftovers(
                &forgery_under_provenance_tracking(),
                SamplePatterns::new(),
                "accepted",
                seed,
            );
            assert!(
                !accepted.contains(&Value::Channel(Channel::new("v2"))),
                "forged value accepted under seed {}",
                seed
            );
            assert!(
                accepted.contains(&Value::Channel(Channel::new("v1"))),
                "the genuine value is always accepted (seed {})",
                seed
            );
        }
    }
}
