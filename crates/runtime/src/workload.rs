//! Workload generators: families of systems used by the examples, the
//! integration tests and the benchmark harness.
//!
//! * [`pipeline`] — a linear relay chain (the auditing scenario at scale);
//! * [`fan_out`] — many producers, many consumers sharing one channel (the
//!   introduction's "market of values");
//! * [`ring`] — a token passed once around a ring of principals;
//! * [`competition`] — the paper's photography-competition example,
//!   generalised to any number of contestants and judges;
//! * [`authentication`] — the paper's §2.3.2 authentication example.

use piprov_core::pattern::AnyPattern;
use piprov_core::process::{InputBranch, Process};
use piprov_core::system::{Message, System};
use piprov_core::value::{AnnotatedValue, Identifier};
use piprov_patterns::{GroupExpr, Pattern};

/// A linear pipeline: `stage0` emits `messages` values on the first hop;
/// stages `1..stages` forward every value to the next hop; a final `sink`
/// consumes them.
///
/// Principals are named `stage0, stage1, …, sink`; hop channels are
/// `hop1, hop2, …`.
pub fn pipeline(stages: usize, messages: usize) -> System<AnyPattern> {
    let mut parts = Vec::new();
    let outputs: Vec<Process<AnyPattern>> = (0..messages)
        .map(|k| {
            Process::output(
                Identifier::channel("hop1"),
                Identifier::channel(format!("v{}", k).as_str()),
            )
        })
        .collect();
    parts.push(System::located("stage0", Process::par_all(outputs)));
    for i in 1..stages {
        let from = format!("hop{}", i);
        let to = format!("hop{}", i + 1);
        parts.push(System::located(
            format!("stage{}", i).as_str(),
            Process::replicate(Process::input(
                Identifier::channel(from.as_str()),
                AnyPattern,
                "x",
                Process::output(Identifier::channel(to.as_str()), Identifier::variable("x")),
            )),
        ));
    }
    parts.push(System::located(
        "sink",
        Process::replicate(Process::input(
            Identifier::channel(format!("hop{}", stages).as_str()),
            AnyPattern,
            "x",
            Process::nil(),
        )),
    ));
    System::par_all(parts)
}

/// A fan-out/fan-in workload: `producers` principals each send
/// `messages_per_producer` values on a shared channel `mkt`; `consumers`
/// principals repeatedly read from it.
pub fn fan_out(
    producers: usize,
    consumers: usize,
    messages_per_producer: usize,
) -> System<AnyPattern> {
    let mut parts = Vec::new();
    for p in 0..producers {
        let outputs: Vec<Process<AnyPattern>> = (0..messages_per_producer)
            .map(|k| {
                Process::output(
                    Identifier::channel("mkt"),
                    Identifier::channel(format!("v{}_{}", p, k).as_str()),
                )
            })
            .collect();
        parts.push(System::located(
            format!("producer{}", p).as_str(),
            Process::par_all(outputs),
        ));
    }
    for c in 0..consumers {
        parts.push(System::located(
            format!("consumer{}", c).as_str(),
            Process::replicate(Process::input(
                Identifier::channel("mkt"),
                AnyPattern,
                "x",
                Process::nil(),
            )),
        ));
    }
    System::par_all(parts)
}

/// A ring of `nodes` principals passing one token around once: node `i`
/// waits on channel `ring{i}` and forwards to `ring{(i+1) % nodes}`.  The
/// token is injected on `ring0`.
pub fn ring(nodes: usize) -> System<AnyPattern> {
    let mut parts = Vec::new();
    for i in 0..nodes {
        let from = format!("ring{}", i);
        let to = format!("ring{}", (i + 1) % nodes);
        parts.push(System::located(
            format!("node{}", i).as_str(),
            Process::input(
                Identifier::channel(from.as_str()),
                AnyPattern,
                "tok",
                Process::output(
                    Identifier::channel(to.as_str()),
                    Identifier::variable("tok"),
                ),
            ),
        ));
    }
    parts.push(System::message(Message::new(
        "ring0",
        AnnotatedValue::channel("token"),
    )));
    System::par_all(parts)
}

/// A supply chain with many distinct origins: `suppliers` principals each
/// inject `messages_per_supplier` distinct values on `lane1`; `relays`
/// relay stages forward everything lane by lane; a final `sink` consumes
/// from the last lane.
///
/// This is the audit service's reference workload: every value has a
/// nameable origin (`supplier{i}`), travels through the same relays
/// (`relay{j}`), and accumulates a multi-hop history — so `OriginOf`,
/// `WhoTouched` and `VetValue` queries all have non-trivial answers.
/// Principals are `supplier0…`, `relay0…`, `sink`; lane channels are
/// `lane1…lane{relays+1}`.
pub fn supply_chain(
    suppliers: usize,
    relays: usize,
    messages_per_supplier: usize,
) -> System<AnyPattern> {
    let mut parts = Vec::new();
    for s in 0..suppliers {
        let outputs: Vec<Process<AnyPattern>> = (0..messages_per_supplier)
            .map(|k| {
                Process::output(
                    Identifier::channel("lane1"),
                    Identifier::channel(format!("item{}_{}", s, k).as_str()),
                )
            })
            .collect();
        parts.push(System::located(
            format!("supplier{}", s).as_str(),
            Process::par_all(outputs),
        ));
    }
    for r in 0..relays {
        let from = format!("lane{}", r + 1);
        let to = format!("lane{}", r + 2);
        parts.push(System::located(
            format!("relay{}", r).as_str(),
            Process::replicate(Process::input(
                Identifier::channel(from.as_str()),
                AnyPattern,
                "x",
                Process::output(Identifier::channel(to.as_str()), Identifier::variable("x")),
            )),
        ));
    }
    parts.push(System::located(
        "sink",
        Process::replicate(Process::input(
            Identifier::channel(format!("lane{}", relays + 1).as_str()),
            AnyPattern,
            "x",
            Process::nil(),
        )),
    ));
    System::par_all(parts)
}

/// The paper's photography competition (§2.3.2), generalised.
///
/// * Contestant `c{i}` submits entry `e{i}` on `sub` and waits on `pub` for
///   a result pair whose first component *originated* at `c{i}`.
/// * The organiser `o` forwards submissions to judges using patterns on the
///   submitter's identity (contestant `i` is assigned to judge
///   `i % judges`), collects `(entry, rating)` pairs on `res` and publishes
///   them on `pub`.
/// * Judge `j{k}` rates entries received on `in{k}` (the rating is modelled
///   as a fresh channel name `rate{k}`).
pub fn competition(contestants: usize, judges: usize) -> System<Pattern> {
    assert!(
        contestants > 0 && judges > 0,
        "need at least one contestant and judge"
    );
    let mut parts = Vec::new();
    // Contestants.
    for i in 0..contestants {
        let me = format!("c{}", i);
        let entry = format!("e{}", i);
        let submit = Process::output(
            Identifier::channel("sub"),
            Identifier::channel(entry.as_str()),
        );
        let own_result = Pattern::originated_at(GroupExpr::single(me.as_str()));
        let collect = Process::InputSum {
            channel: Identifier::channel("pub"),
            branches: vec![InputBranch::polyadic(
                vec![(own_result, "x".into()), (Pattern::Any, "y".into())],
                Process::nil(),
            )],
        };
        parts.push(System::located(me.as_str(), Process::par(submit, collect)));
    }
    // Organiser: route each submission to the judge its contestant group maps to.
    let route_branches: Vec<InputBranch<Pattern>> = (0..judges)
        .map(|k| {
            let group_members: Vec<String> = (0..contestants)
                .filter(|i| i % judges == k)
                .map(|i| format!("c{}", i))
                .collect();
            let group = if group_members.is_empty() {
                // No contestant maps to this judge; use an unmatchable group.
                GroupExpr::single("nobody")
            } else {
                GroupExpr::any_of(group_members)
            };
            InputBranch::monadic(
                Pattern::immediately_sent_by(group),
                "x",
                Process::output(
                    Identifier::channel(format!("in{}", k).as_str()),
                    Identifier::variable("x"),
                ),
            )
        })
        .collect();
    let route = Process::replicate(Process::InputSum {
        channel: Identifier::channel("sub"),
        branches: route_branches,
    });
    let publish = Process::replicate(Process::InputSum {
        channel: Identifier::channel("res"),
        branches: vec![InputBranch::polyadic(
            vec![(Pattern::Any, "y".into()), (Pattern::Any, "z".into())],
            Process::output_tuple(
                Identifier::channel("pub"),
                vec![Identifier::variable("y"), Identifier::variable("z")],
            ),
        )],
    });
    parts.push(System::located("o", Process::par(route, publish)));
    // Judges.
    for k in 0..judges {
        parts.push(System::located(
            format!("j{}", k).as_str(),
            Process::replicate(Process::input(
                Identifier::channel(format!("in{}", k).as_str()),
                Pattern::Any,
                "x",
                Process::output_tuple(
                    Identifier::channel("res"),
                    vec![
                        Identifier::variable("x"),
                        Identifier::channel(format!("rate{}", k).as_str()),
                    ],
                ),
            )),
        ));
    }
    System::par_all(parts)
}

/// The paper's authentication example (§2.3.2).
///
/// Principal `a` accepts on `m` only data *directly sent* by `c`
/// (`c!Any; Any`), while `b` accepts only data that *originated* at `d`
/// (`Any; d!Any`) whatever the intermediaries.  `c` sends a value directly;
/// `d`'s value is relayed through `f`.
pub fn authentication() -> System<Pattern> {
    System::par_all(vec![
        System::located(
            "a",
            Process::input(
                Identifier::channel("m"),
                Pattern::immediately_sent_by(GroupExpr::single("c")),
                "x",
                Process::nil(),
            ),
        ),
        System::located(
            "b",
            Process::input(
                Identifier::channel("m"),
                Pattern::originated_at(GroupExpr::single("d")),
                "y",
                Process::nil(),
            ),
        ),
        System::located(
            "c",
            Process::output(Identifier::channel("m"), Identifier::channel("v1")),
        ),
        System::located(
            "d",
            Process::output(Identifier::channel("k"), Identifier::channel("v2")),
        ),
        System::located(
            "f",
            Process::input(
                Identifier::channel("k"),
                Pattern::Any,
                "z",
                Process::output(Identifier::channel("m"), Identifier::variable("z")),
            ),
        ),
    ])
}

/// The paper's auditing example (§2.3.2): `a` sends `v` for `b` via the
/// intermediary `s`, whose faulty code forwards it to `c` instead.
pub fn auditing() -> System<AnyPattern> {
    System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("m"), Identifier::channel("v")),
        ),
        System::located(
            "s",
            Process::input(
                Identifier::channel("m"),
                AnyPattern,
                "x",
                Process::output(Identifier::channel("nprime"), Identifier::variable("x")),
            ),
        ),
        System::located(
            "c",
            Process::input(
                Identifier::channel("nprime"),
                AnyPattern,
                "x",
                Process::nil(),
            ),
        ),
        System::located(
            "b",
            Process::input(
                Identifier::channel("nsecond"),
                AnyPattern,
                "x",
                Process::nil(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use piprov_core::interpreter::{Executor, StopReason};
    use piprov_core::name::Principal;
    use piprov_core::pattern::TrivialPatterns;
    use piprov_patterns::SamplePatterns;

    #[test]
    fn pipeline_shape() {
        let s = pipeline(4, 3);
        assert!(s.is_closed());
        assert_eq!(s.principals().len(), 5, "stage0..stage3 plus sink");
        let mut exec = Executor::new(&s, TrivialPatterns);
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // 3 messages × 4 sends and 4 receives each.
        assert_eq!(exec.stats().sends, 12);
        assert_eq!(exec.stats().receives, 12);
    }

    #[test]
    fn fan_out_consumes_everything() {
        let s = fan_out(3, 2, 4);
        let mut exec = Executor::new(&s, TrivialPatterns);
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        assert_eq!(exec.stats().sends, 12);
        assert_eq!(exec.stats().receives, 12);
        assert!(exec.configuration().message_count() == 0);
    }

    #[test]
    fn ring_passes_the_token_once_round() {
        let s = ring(5);
        let mut exec = Executor::new(&s, TrivialPatterns);
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        assert_eq!(exec.stats().receives, 5);
        assert_eq!(exec.stats().sends, 5);
        // The token ends up back on ring0 with nobody left to take it.
        assert_eq!(exec.configuration().message_count(), 1);
        let token = &exec.configuration().messages[0];
        assert_eq!(token.channel.as_str(), "ring0");
        assert_eq!(token.payload[0].provenance.len(), 10);
    }

    #[test]
    fn supply_chain_relays_every_item_to_the_sink() {
        let s = supply_chain(3, 2, 2);
        assert!(s.is_closed());
        assert_eq!(s.principals().len(), 6, "3 suppliers, 2 relays, sink");
        let mut exec = Executor::new(&s, TrivialPatterns);
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // 6 items each sent 3 times (supplier + 2 relays) and received 3
        // times (2 relays + sink).
        assert_eq!(exec.stats().sends, 18);
        assert_eq!(exec.stats().receives, 18);
        assert_eq!(exec.configuration().message_count(), 0);
    }

    #[test]
    fn competition_delivers_every_result_to_its_owner() {
        let s = competition(3, 2);
        assert!(s.is_closed());
        let mut exec = Executor::new(&s, SamplePatterns::new());
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // Every contestant's result reaches them: 3 submissions, 3 routed,
        // 3 judged, 3 published, 3 collected = 12 receives in total.
        assert_eq!(exec.stats().receives, 12);
        assert_eq!(
            exec.configuration().message_count(),
            0,
            "no unclaimed results"
        );
    }

    #[test]
    fn authentication_routes_by_provenance() {
        let s = authentication();
        let mut exec = Executor::new(&s, SamplePatterns::new());
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // a consumed c's direct value; b consumed d's relayed value.
        assert_eq!(exec.configuration().message_count(), 0);
        assert_eq!(
            exec.stats().receives,
            3,
            "a, b and the relay f each received once"
        );
    }

    #[test]
    fn auditing_reaches_c_not_b() {
        let s = auditing();
        let mut exec = Executor::new(&s, TrivialPatterns);
        exec.run(100_000).unwrap();
        // b is still waiting: its channel nsecond never carries anything.
        let waiting: Vec<Principal> = exec.configuration().principals().into_iter().collect();
        assert!(waiting.contains(&Principal::new("b")));
        assert!(
            !waiting.contains(&Principal::new("c")),
            "c finished (got the value)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one contestant")]
    fn competition_requires_participants() {
        let _ = competition(0, 1);
    }
}
