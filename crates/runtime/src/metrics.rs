//! Metrics collected by a simulation run.
//!
//! These are the quantities the overhead experiments (E9, E12, E13 in
//! `DESIGN.md`) report: how much work provenance tracking added, how large
//! annotations grew, how many pattern checks were performed.

use std::fmt;
use std::time::Duration;

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Reduction steps executed.
    pub steps: usize,
    /// Send steps.
    pub sends: usize,
    /// Receive steps.
    pub receives: usize,
    /// Match (if) steps.
    pub matches: usize,
    /// Messages handed to the network.
    pub messages_sent: usize,
    /// Messages delivered to the message pool.
    pub messages_delivered: usize,
    /// Messages dropped by the network.
    pub messages_dropped: usize,
    /// Messages duplicated by the network.
    pub messages_duplicated: usize,
    /// Pattern-satisfaction queries answered by the middleware.
    pub pattern_checks: usize,
    /// Sum of the total provenance sizes (event counts, nested included) of
    /// every value at the moment it was delivered.  This is the *logical
    /// tree* size: shared substructure is counted once per occurrence.
    pub provenance_events_delivered: usize,
    /// Largest single provenance annotation observed.
    pub max_provenance_size: usize,
    /// Number of *distinct* interned provenance DAG nodes among everything
    /// delivered — the physical footprint, as opposed to
    /// [`provenance_events_delivered`](SimMetrics::provenance_events_delivered)
    /// which is the logical tree size.  The gap between the two is the
    /// sharing the interner exploits.
    pub unique_prov_nodes: usize,
    /// Virtual time at the end of the run.
    pub virtual_time: u64,
    /// Wall-clock time spent inside the simulator.
    pub wall_time: Duration,
}

impl SimMetrics {
    /// Average provenance size per delivered value (0 if none).
    pub fn mean_provenance_size(&self) -> f64 {
        if self.messages_delivered == 0 {
            0.0
        } else {
            self.provenance_events_delivered as f64 / self.messages_delivered as f64
        }
    }

    /// Delivery ratio (delivered / sent), 1.0 when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// How many logical tree events each distinct interned node stands for:
    /// `provenance_events_delivered / unique_prov_nodes` (1.0 when nothing
    /// distinct was delivered).  A factor of *k* means the cons-list or
    /// flat representations would store and compare *k×* the data the
    /// interned DAG does.
    pub fn sharing_factor(&self) -> f64 {
        if self.unique_prov_nodes == 0 {
            1.0
        } else {
            self.provenance_events_delivered as f64 / self.unique_prov_nodes as f64
        }
    }

    /// Throughput in reduction steps per wall-clock second (0 if no time
    /// elapsed).
    pub fn steps_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.steps as f64 / secs
        }
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation metrics:")?;
        writeln!(f, "  steps              {}", self.steps)?;
        writeln!(
            f,
            "  sends/receives/ifs {}/{}/{}",
            self.sends, self.receives, self.matches
        )?;
        writeln!(
            f,
            "  messages           {} sent, {} delivered, {} dropped, {} duplicated",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.messages_duplicated
        )?;
        writeln!(f, "  pattern checks     {}", self.pattern_checks)?;
        writeln!(
            f,
            "  provenance         {} events delivered (mean {:.2}, max {})",
            self.provenance_events_delivered,
            self.mean_provenance_size(),
            self.max_provenance_size
        )?;
        writeln!(
            f,
            "  sharing            {} unique DAG nodes (factor {:.2}×)",
            self.unique_prov_nodes,
            self.sharing_factor()
        )?;
        writeln!(f, "  virtual time       {}", self.virtual_time)?;
        write!(f, "  wall time          {:?}", self.wall_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut m = SimMetrics::default();
        assert_eq!(m.mean_provenance_size(), 0.0);
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.steps_per_second(), 0.0);
        assert_eq!(m.sharing_factor(), 1.0);
        m.messages_sent = 10;
        m.messages_delivered = 8;
        m.provenance_events_delivered = 40;
        m.unique_prov_nodes = 10;
        m.steps = 100;
        m.wall_time = Duration::from_millis(500);
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-9);
        assert!((m.mean_provenance_size() - 5.0).abs() < 1e-9);
        assert!((m.steps_per_second() - 200.0).abs() < 1e-6);
        assert!((m.sharing_factor() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_key_fields() {
        let m = SimMetrics {
            steps: 3,
            sends: 1,
            receives: 1,
            matches: 1,
            ..SimMetrics::default()
        };
        let text = m.to_string();
        assert!(text.contains("steps              3"));
        assert!(text.contains("1/1/1"));
    }
}
