//! The discrete-event simulator.
//!
//! A [`Simulation`] runs a provenance-calculus system "in the wild": the
//! trusted middleware (the provenance-tracking reduction semantics) runs at
//! every principal, while messages produced by send steps travel through a
//! [`Network`] that delays, drops or duplicates them.  Virtual time
//! advances by a fixed cost per local step and jumps to the next delivery
//! when every principal is blocked waiting for input.
//!
//! The middleware can run in two modes (experiment E9):
//!
//! * [`TrackingMode::Full`] — the paper's semantics: provenance is updated
//!   on every send and receive and vetted against patterns;
//! * [`TrackingMode::Stripped`] — annotations are erased after every send,
//!   approximating a runtime without provenance tracking (the cost
//!   baseline).

use crate::fault::{Fault, FaultPlan};
use crate::metrics::SimMetrics;
use crate::network::{Delivery, Network, NetworkConfig, VirtualTime};
use piprov_core::configuration::Configuration;
use piprov_core::pattern::{CountingMatcher, PatternLanguage};
use piprov_core::provenance::{ProvId, Provenance};
use piprov_core::reduction::{apply_redex, enumerate_redexes, ReductionError, StepKind};
use piprov_core::system::{Message, System};
use piprov_core::value::AnnotatedValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// How the middleware treats provenance annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackingMode {
    /// Track and vet provenance exactly as the calculus prescribes.
    #[default]
    Full,
    /// Erase provenance after every send: the no-tracking cost baseline.
    Stripped,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Network behaviour.
    pub network: NetworkConfig,
    /// Middleware tracking mode.
    pub tracking: TrackingMode,
    /// Virtual-time cost of one local reduction step.
    pub local_step_cost: VirtualTime,
    /// Scheduler seed (choice among enabled redexes).
    pub scheduler_seed: u64,
    /// Injected faults.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            network: NetworkConfig::default(),
            tracking: TrackingMode::Full,
            local_step_cost: 1,
            scheduler_seed: 0,
            faults: FaultPlan::default(),
        }
    }
}

/// Observer of message deliveries, the hook an external consumer (a
/// provenance recorder, an audit-service ingest sink) uses to see every
/// message the moment the network hands it to the message pool.
///
/// The sink sees the message exactly as delivered: after tracking-mode
/// stripping and after any active forgery rewrote its annotations — i.e.
/// what the paper's trusted middleware would be asked to persist.
///
/// Implemented for any `FnMut(&Principal, &Message, VirtualTime)` closure.
pub trait DeliverySink {
    /// Called once per delivered message (duplicated messages are observed
    /// once per delivery).
    fn delivered(
        &mut self,
        sender: &piprov_core::name::Principal,
        message: &Message,
        at: VirtualTime,
    );

    /// Called when a run ends ([`Simulation::run_with_sink`] invokes it
    /// before returning), so sinks that buffer — a batching network client,
    /// a write-behind recorder — can push their tail without waiting for
    /// drop.  The default does nothing.
    fn flush(&mut self) {}
}

impl<F: FnMut(&piprov_core::name::Principal, &Message, VirtualTime)> DeliverySink for F {
    fn delivered(
        &mut self,
        sender: &piprov_core::name::Principal,
        message: &Message,
        at: VirtualTime,
    ) {
        self(sender, message, at)
    }
}

/// A sink that ignores every delivery; what [`Simulation::run`] uses.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl DeliverySink for NullSink {
    fn delivered(
        &mut self,
        _sender: &piprov_core::name::Principal,
        _message: &Message,
        _at: VirtualTime,
    ) {
    }
}

#[derive(Debug, Clone)]
struct InTransit {
    deliver_at: VirtualTime,
    sequence: u64,
    sender: piprov_core::name::Principal,
    message: Message,
}

impl PartialEq for InTransit {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.sequence == other.sequence
    }
}
impl Eq for InTransit {}
impl PartialOrd for InTransit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InTransit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.sequence).cmp(&(other.deliver_at, other.sequence))
    }
}

/// Why a simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStop {
    /// No thread can act and nothing is in flight.
    Terminated,
    /// The step budget was exhausted.
    StepLimit,
}

/// A discrete-event simulation of a provenance-calculus system.
#[derive(Debug)]
pub struct Simulation<P, L> {
    configuration: Configuration<P>,
    matcher: CountingMatcher<L>,
    network: Network,
    in_transit: BinaryHeap<Reverse<InTransit>>,
    clock: VirtualTime,
    sequence: u64,
    tracking: TrackingMode,
    local_step_cost: VirtualTime,
    rng: StdRng,
    faults: FaultPlan,
    /// Channels whose deliveries an adversary rewrites, with the identity
    /// being forged (activated by [`Fault::ForgeOnChannel`]).
    forgeries: Vec<(piprov_core::name::Channel, piprov_core::name::Principal)>,
    /// Interned provenance nodes seen among delivered values; feeds the
    /// sharing metrics (unique DAG nodes vs. logical tree size).
    seen_prov_nodes: HashSet<ProvId>,
    metrics: SimMetrics,
}

impl<P, L> Simulation<P, L>
where
    P: Clone,
    L: PatternLanguage<Pattern = P>,
{
    /// Creates a simulation of `system`.
    pub fn new(system: &System<P>, matcher: L, config: SimConfig) -> Self {
        Simulation {
            configuration: Configuration::from_system(system),
            matcher: CountingMatcher::new(matcher),
            network: Network::new(config.network),
            in_transit: BinaryHeap::new(),
            clock: 0,
            sequence: 0,
            tracking: config.tracking,
            local_step_cost: config.local_step_cost.max(1),
            rng: StdRng::seed_from_u64(config.scheduler_seed),
            faults: config.faults,
            forgeries: Vec::new(),
            seen_prov_nodes: HashSet::new(),
            metrics: SimMetrics::default(),
        }
    }

    /// Current virtual time.
    pub fn clock(&self) -> VirtualTime {
        self.clock
    }

    /// The current configuration (delivered messages only).
    pub fn configuration(&self) -> &Configuration<P> {
        &self.configuration
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The network (counters, partitions).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Number of messages currently in flight (accepted by the network but
    /// not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.in_transit.len()
    }

    /// Runs until termination or `max_steps` reduction steps.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors (malformed systems).
    pub fn run(&mut self, max_steps: usize) -> Result<SimStop, ReductionError> {
        self.run_with_sink(max_steps, &mut NullSink)
    }

    /// Like [`Simulation::run`], but hands every delivered message to
    /// `sink` the moment it enters the message pool.
    ///
    /// This is how delivered records stream out of the simulator and into
    /// an external consumer — the audit-service demo feeds an
    /// `AuditRecorder` here while auditor threads query the engine
    /// concurrently.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors (malformed systems).
    pub fn run_with_sink(
        &mut self,
        max_steps: usize,
        sink: &mut dyn DeliverySink,
    ) -> Result<SimStop, ReductionError> {
        let started = Instant::now();
        let mut steps = 0usize;
        let outcome = loop {
            if steps >= max_steps {
                break SimStop::StepLimit;
            }
            self.apply_due_faults();
            let redexes = enumerate_redexes(&self.configuration, &self.matcher);
            if redexes.is_empty() {
                if !self.deliver_next(sink) {
                    break SimStop::Terminated;
                }
                continue;
            }
            let chosen = redexes[self.rng.gen_range(0..redexes.len())];
            let (next, event) = apply_redex(&self.configuration, &chosen, &self.matcher)?;
            self.configuration = next;
            self.clock += self.local_step_cost;
            steps += 1;
            self.metrics.steps += 1;
            match &event.kind {
                StepKind::Send { .. } => {
                    self.metrics.sends += 1;
                    self.route_last_message(&event.principal);
                }
                StepKind::Receive { .. } => self.metrics.receives += 1,
                StepKind::IfTrue { .. } | StepKind::IfFalse { .. } => self.metrics.matches += 1,
            }
        };
        sink.flush();
        self.metrics.pattern_checks = self.matcher.calls() as usize;
        self.metrics.virtual_time = self.clock;
        self.metrics.wall_time += started.elapsed();
        self.metrics.messages_dropped = self.network.dropped() as usize;
        self.metrics.messages_duplicated = self.network.duplicated() as usize;
        Ok(outcome)
    }

    /// Hands the most recently produced message to the network.
    fn route_last_message(&mut self, sender: &piprov_core::name::Principal) {
        let Some(mut message) = self.configuration.messages.pop() else {
            return;
        };
        if self.tracking == TrackingMode::Stripped {
            message = strip_provenance(message);
        }
        self.metrics.messages_sent += 1;
        match self.network.route(sender, self.clock) {
            Delivery::Drop => {}
            Delivery::Deliver(at) => self.enqueue(message, sender.clone(), at),
            Delivery::Duplicate(first, second) => {
                self.enqueue(message.clone(), sender.clone(), first);
                self.enqueue(message, sender.clone(), second);
            }
        }
    }

    fn enqueue(
        &mut self,
        message: Message,
        sender: piprov_core::name::Principal,
        deliver_at: VirtualTime,
    ) {
        self.sequence += 1;
        self.in_transit.push(Reverse(InTransit {
            deliver_at,
            sequence: self.sequence,
            sender,
            message,
        }));
    }

    /// Advances the clock to the next delivery and moves every message due
    /// by then into the configuration.  Returns `false` if nothing was in
    /// flight.
    fn deliver_next(&mut self, sink: &mut dyn DeliverySink) -> bool {
        let Some(Reverse(first)) = self.in_transit.pop() else {
            return false;
        };
        self.clock = self.clock.max(first.deliver_at);
        self.deliver(first.sender, first.message, sink);
        while let Some(Reverse(next)) = self.in_transit.peek() {
            if next.deliver_at <= self.clock {
                let Reverse(item) = self.in_transit.pop().expect("peeked");
                self.deliver(item.sender, item.message, sink);
            } else {
                break;
            }
        }
        true
    }

    fn deliver(
        &mut self,
        sender: piprov_core::name::Principal,
        mut message: Message,
        sink: &mut dyn DeliverySink,
    ) {
        // An active forgery on this channel rewrites the annotations of
        // everything delivered on it from the fault's activation onwards.
        if let Some((_, forged_sender)) = self
            .forgeries
            .iter()
            .find(|(channel, _)| channel == &message.channel)
        {
            for value in &mut message.payload {
                *value = AnnotatedValue::new(
                    value.value.clone(),
                    Provenance::single(piprov_core::provenance::Event::output(
                        forged_sender.clone(),
                        Provenance::empty(),
                    )),
                );
            }
        }
        self.metrics.messages_delivered += 1;
        for value in &message.payload {
            // total_size is a cached O(1) read off the interned node, even
            // when the logical tree is exponential in the DAG.
            let size = value.provenance.total_size();
            self.metrics.provenance_events_delivered = self
                .metrics
                .provenance_events_delivered
                .saturating_add(size);
            self.metrics.max_provenance_size = self.metrics.max_provenance_size.max(size);
            record_delivered_nodes(&mut self.seen_prov_nodes, &value.provenance);
        }
        self.metrics.unique_prov_nodes = self.seen_prov_nodes.len();
        sink.delivered(&sender, &message, self.clock);
        self.configuration.add_message(message);
    }

    fn apply_due_faults(&mut self) {
        let due = self.faults.due(self.clock);
        for fault in due {
            match fault {
                Fault::PartitionAt { principal, .. } => self.network.partition(principal),
                Fault::HealAt { principal, .. } => self.network.heal(&principal),
                Fault::ForgeOnChannel {
                    channel,
                    claimed_sender,
                    ..
                } => {
                    // Rewrite the provenance of every message already
                    // delivered on the channel, and keep forging everything
                    // delivered on it from now on — the attack the paper's
                    // introduction warns about.
                    for message in &mut self.configuration.messages {
                        if message.channel == channel {
                            for value in &mut message.payload {
                                *value = AnnotatedValue::new(
                                    value.value.clone(),
                                    Provenance::single(piprov_core::provenance::Event::output(
                                        claimed_sender.clone(),
                                        Provenance::empty(),
                                    )),
                                );
                            }
                        }
                    }
                    self.forgeries.push((channel, claimed_sender));
                }
            }
        }
    }
}

/// Walks the provenance DAG, adding every interned node reachable from
/// `provenance` (through tail and channel-provenance edges) to `seen`.
///
/// Already-seen nodes prune the walk, so across a whole run the total cost
/// is O(distinct nodes delivered), not O(tree) per delivery.
fn record_delivered_nodes(seen: &mut HashSet<ProvId>, provenance: &Provenance) {
    let mut stack = vec![provenance.clone()];
    while let Some(start) = stack.pop() {
        let mut cursor = start;
        while !cursor.is_empty() {
            if !seen.insert(cursor.id()) {
                break;
            }
            let (channel, tail) = {
                let event = cursor.head().expect("non-empty provenance");
                (
                    event.channel_provenance.clone(),
                    cursor.tail().expect("non-empty provenance").clone(),
                )
            };
            if !channel.is_empty() {
                stack.push(channel);
            }
            cursor = tail;
        }
    }
}

/// Erases the provenance annotations of a message's payload.
pub fn strip_provenance(message: Message) -> Message {
    Message {
        channel: message.channel,
        payload: message
            .payload
            .into_iter()
            .map(|v| AnnotatedValue::new(v.value, Provenance::empty()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use piprov_core::name::Principal;
    use piprov_core::pattern::TrivialPatterns;

    #[test]
    fn reliable_pipeline_terminates_and_delivers_everything() {
        let system = workload::pipeline(4, 3);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                ..SimConfig::default()
            },
        );
        let stop = sim.run(100_000).unwrap();
        assert_eq!(stop, SimStop::Terminated);
        let m = sim.metrics();
        assert_eq!(m.messages_sent, m.messages_delivered);
        assert!(m.sends >= 12, "3 messages through 4 stages");
        assert!(sim.clock() > 0);
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn provenance_grows_along_the_pipeline_in_full_mode() {
        let system = workload::pipeline(6, 1);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                tracking: TrackingMode::Full,
                ..SimConfig::default()
            },
        );
        sim.run(100_000).unwrap();
        assert!(
            sim.metrics().max_provenance_size >= 6,
            "provenance accumulates one send+receive pair per hop: {}",
            sim.metrics().max_provenance_size
        );
    }

    #[test]
    fn stripped_mode_keeps_provenance_empty() {
        let system = workload::pipeline(6, 1);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                tracking: TrackingMode::Stripped,
                ..SimConfig::default()
            },
        );
        sim.run(100_000).unwrap();
        assert_eq!(sim.metrics().max_provenance_size, 0);
        assert_eq!(sim.metrics().provenance_events_delivered, 0);
    }

    #[test]
    fn sharing_metrics_track_unique_nodes() {
        let system = workload::pipeline(6, 3);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                tracking: TrackingMode::Full,
                ..SimConfig::default()
            },
        );
        sim.run(100_000).unwrap();
        let m = sim.metrics();
        assert!(m.unique_prov_nodes > 0, "full tracking interns nodes");
        assert!(
            m.unique_prov_nodes <= m.provenance_events_delivered,
            "distinct nodes never exceed the logical tree events"
        );
        assert!(m.sharing_factor() >= 1.0);
        assert!(m.to_string().contains("unique DAG nodes"));

        // Stripped mode delivers only empty provenance: nothing interned.
        let mut stripped = Simulation::new(
            &workload::pipeline(6, 3),
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                tracking: TrackingMode::Stripped,
                ..SimConfig::default()
            },
        );
        stripped.run(100_000).unwrap();
        assert_eq!(stripped.metrics().unique_prov_nodes, 0);
    }

    #[test]
    fn lossy_network_loses_messages_and_the_pipeline_stalls() {
        let system = workload::pipeline(3, 5);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig {
                    drop_probability: 1.0,
                    ..NetworkConfig::reliable()
                },
                ..SimConfig::default()
            },
        );
        let stop = sim.run(100_000).unwrap();
        assert_eq!(stop, SimStop::Terminated);
        assert_eq!(sim.metrics().messages_delivered, 0);
        assert_eq!(sim.metrics().receives, 0);
        assert_eq!(sim.metrics().messages_dropped, sim.metrics().messages_sent);
    }

    #[test]
    fn duplication_can_deliver_more_than_sent() {
        let system = workload::pipeline(2, 4);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig {
                    duplicate_probability: 1.0,
                    ..NetworkConfig::reliable()
                },
                ..SimConfig::default()
            },
        );
        sim.run(100_000).unwrap();
        assert!(sim.metrics().messages_delivered > sim.metrics().messages_sent);
    }

    #[test]
    fn partition_fault_silences_a_principal() {
        let system = workload::pipeline(3, 2);
        let mut faults = FaultPlan::default();
        faults.push(Fault::PartitionAt {
            time: 0,
            principal: Principal::new("stage0"),
        });
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                faults,
                ..SimConfig::default()
            },
        );
        sim.run(100_000).unwrap();
        // stage0 is the source: nothing it sends is ever delivered.
        assert_eq!(sim.metrics().messages_delivered, 0);
    }

    #[test]
    fn delivery_sink_observes_every_delivery_with_its_sender() {
        let system = workload::supply_chain(2, 2, 2);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                ..SimConfig::default()
            },
        );
        let mut observed: Vec<(Principal, String, VirtualTime)> = Vec::new();
        let mut sink = |sender: &Principal, message: &Message, at: VirtualTime| {
            observed.push((sender.clone(), message.channel.as_str().to_string(), at));
        };
        sim.run_with_sink(100_000, &mut sink).unwrap();
        assert_eq!(observed.len(), sim.metrics().messages_delivered);
        assert!(observed
            .iter()
            .any(|(p, _, _)| p == &Principal::new("supplier0")));
        assert!(observed
            .iter()
            .any(|(p, chan, _)| p == &Principal::new("relay1") && chan == "lane3"));
        // Delivery times are observed in non-decreasing clock order.
        assert!(observed.windows(2).all(|w| w[0].2 <= w[1].2));
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let run = |seed| {
            let system = workload::fan_out(3, 2, 4);
            let mut sim = Simulation::new(
                &system,
                TrivialPatterns,
                SimConfig {
                    scheduler_seed: seed,
                    network: NetworkConfig {
                        jitter: 7,
                        seed,
                        ..NetworkConfig::default()
                    },
                    ..SimConfig::default()
                },
            );
            sim.run(100_000).unwrap();
            let mut metrics = sim.metrics().clone();
            metrics.wall_time = std::time::Duration::ZERO; // wall time is not deterministic
            (metrics, sim.clock())
        };
        assert_eq!(run(5), run(5));
    }
}
