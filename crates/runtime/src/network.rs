//! The network model of the simulator.
//!
//! Messages produced by send steps do not become available to receivers
//! immediately: the network assigns each one a delivery time (base latency
//! plus jitter) and may drop or duplicate it.  All randomness is drawn from
//! a seeded generator, so simulations are reproducible.

use piprov_core::name::Principal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;

/// Virtual time, in abstract "ticks".
pub type VirtualTime = u64;

/// Configuration of the network model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Minimum latency applied to every message.
    pub base_latency: VirtualTime,
    /// Maximum extra latency added uniformly at random.
    pub jitter: VirtualTime,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_probability: f64,
    /// Seed for the network's random decisions.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            base_latency: 1,
            jitter: 4,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0,
        }
    }
}

impl NetworkConfig {
    /// A perfectly reliable, zero-jitter network (useful for deterministic
    /// tests).
    pub fn reliable() -> Self {
        NetworkConfig {
            base_latency: 1,
            jitter: 0,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0,
        }
    }

    /// A lossy wide-area-like network.
    pub fn lossy(drop_probability: f64, seed: u64) -> Self {
        NetworkConfig {
            base_latency: 5,
            jitter: 20,
            drop_probability,
            duplicate_probability: 0.0,
            seed,
        }
    }
}

/// The fate the network decided for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver once at the given time.
    Deliver(VirtualTime),
    /// Deliver twice (duplication) at the given times.
    Duplicate(VirtualTime, VirtualTime),
    /// Never deliver.
    Drop,
}

impl Delivery {
    /// The delivery times implied by this fate.
    pub fn times(&self) -> Vec<VirtualTime> {
        match self {
            Delivery::Deliver(t) => vec![*t],
            Delivery::Duplicate(t1, t2) => vec![*t1, *t2],
            Delivery::Drop => vec![],
        }
    }
}

/// The simulated network.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    rng: StdRng,
    partitioned: BTreeSet<Principal>,
    sent: u64,
    dropped: u64,
    duplicated: u64,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Network {
            config,
            rng,
            partitioned: BTreeSet::new(),
            sent: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Cuts a principal off from the network: everything it sends from now
    /// on is dropped (used by fault-injection scenarios).
    pub fn partition(&mut self, principal: Principal) {
        self.partitioned.insert(principal);
    }

    /// Heals a previous partition.
    pub fn heal(&mut self, principal: &Principal) {
        self.partitioned.remove(principal);
    }

    /// `true` if the principal is currently partitioned away.
    pub fn is_partitioned(&self, principal: &Principal) -> bool {
        self.partitioned.contains(principal)
    }

    /// Decides the fate of a message sent by `sender` at time `now`.
    pub fn route(&mut self, sender: &Principal, now: VirtualTime) -> Delivery {
        self.sent += 1;
        if self.partitioned.contains(sender) {
            self.dropped += 1;
            return Delivery::Drop;
        }
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.dropped += 1;
            return Delivery::Drop;
        }
        let latency = |rng: &mut StdRng, cfg: &NetworkConfig| {
            cfg.base_latency
                + if cfg.jitter > 0 {
                    rng.gen_range(0..=cfg.jitter)
                } else {
                    0
                }
        };
        let first = now + latency(&mut self.rng, &self.config);
        if self.config.duplicate_probability > 0.0
            && self.rng.gen_bool(self.config.duplicate_probability)
        {
            self.duplicated += 1;
            let second = now + latency(&mut self.rng, &self.config);
            return Delivery::Duplicate(first, second);
        }
        Delivery::Deliver(first)
    }

    /// Number of messages routed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of messages duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network: {} sent, {} dropped, {} duplicated",
            self.sent, self.dropped, self.duplicated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_network_always_delivers_once() {
        let mut net = Network::new(NetworkConfig::reliable());
        for t in 0..100 {
            match net.route(&Principal::new("a"), t) {
                Delivery::Deliver(at) => assert_eq!(at, t + 1),
                other => panic!("unexpected {:?}", other),
            }
        }
        assert_eq!(net.sent(), 100);
        assert_eq!(net.dropped(), 0);
    }

    #[test]
    fn drops_happen_at_the_configured_rate() {
        let mut net = Network::new(NetworkConfig {
            drop_probability: 0.5,
            ..NetworkConfig::reliable()
        });
        for t in 0..1000 {
            net.route(&Principal::new("a"), t);
        }
        let rate = net.dropped() as f64 / net.sent() as f64;
        assert!((0.4..0.6).contains(&rate), "drop rate {}", rate);
    }

    #[test]
    fn duplication_yields_two_delivery_times() {
        let mut net = Network::new(NetworkConfig {
            duplicate_probability: 1.0,
            ..NetworkConfig::reliable()
        });
        match net.route(&Principal::new("a"), 10) {
            Delivery::Duplicate(t1, t2) => {
                assert!(t1 > 10 && t2 > 10);
            }
            other => panic!("unexpected {:?}", other),
        }
        assert_eq!(net.duplicated(), 1);
        assert_eq!(Delivery::Drop.times().len(), 0);
        assert_eq!(Delivery::Deliver(3).times(), vec![3]);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut net = Network::new(NetworkConfig {
            base_latency: 10,
            jitter: 5,
            ..NetworkConfig::reliable()
        });
        for t in 0..200 {
            if let Delivery::Deliver(at) = net.route(&Principal::new("a"), t) {
                assert!(at >= t + 10 && at <= t + 15);
            }
        }
    }

    #[test]
    fn partitioned_principals_cannot_send() {
        let mut net = Network::new(NetworkConfig::reliable());
        net.partition(Principal::new("a"));
        assert!(net.is_partitioned(&Principal::new("a")));
        assert_eq!(net.route(&Principal::new("a"), 0), Delivery::Drop);
        assert!(matches!(
            net.route(&Principal::new("b"), 0),
            Delivery::Deliver(_)
        ));
        net.heal(&Principal::new("a"));
        assert!(matches!(
            net.route(&Principal::new("a"), 0),
            Delivery::Deliver(_)
        ));
    }

    #[test]
    fn routing_is_reproducible_per_seed() {
        let run = |seed| {
            let mut net = Network::new(NetworkConfig {
                drop_probability: 0.3,
                jitter: 10,
                seed,
                ..NetworkConfig::default()
            });
            (0..50)
                .map(|t| net.route(&Principal::new("a"), t))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn display_summarises_counters() {
        let mut net = Network::new(NetworkConfig::reliable());
        net.route(&Principal::new("a"), 0);
        assert!(net.to_string().contains("1 sent"));
    }
}
