//! End-to-end test of the cross-process serving layer, in-process: an
//! [`AuditServer`] runs in its own threads, a simulated supply chain
//! streams every delivery through the batching wire client
//! ([`RemoteRecorder`]), and concurrent wire clients interrogate the
//! server — their answers must match the in-process engine handling the
//! very same requests on the same store.  A second scenario floods a
//! 1-deep ingest queue and proves the overflow answers typed `Busy`
//! (counted in `EngineStats`) instead of buffering without bound.
//!
//! The workload size scales with `PIPROV_PROPTEST_CASES` (the workspace's
//! deep-run CI knob), and every scenario runs against both server cores.

use piprov::audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRequest};
use piprov::prelude::*;
use piprov::runtime::workload;
use piprov::serve::{ClientConfig, IngestOutcome, ServeConfig, ServerCore};
use piprov::store::{Operation, ProvenanceRecord, ProvenanceStore};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

fn temp_dir(name: &str, core: ServerCore) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "piprov-serve-it-{}-{}-{}",
        std::process::id(),
        name,
        core.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Scale factor: 1 by default, grows with the CI deep-run knob.
fn scale() -> usize {
    std::env::var("PIPROV_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|cases| (cases / 256).clamp(1, 8))
        .unwrap_or(1)
}

fn item(s: usize, k: usize) -> Value {
    Value::Channel(Channel::new(format!("item{}_{}", s, k)))
}

#[test]
fn simulation_streams_over_the_wire_and_concurrent_clients_agree_with_the_engine() {
    for core in ServerCore::all() {
        let suppliers = 3usize;
        let relays = 2usize;
        let items_per_supplier = 4 * scale();
        let auditors = 3usize;

        let dir = temp_dir("e2e", core);
        let store = ProvenanceStore::open(&dir).unwrap();
        let engine = Arc::new(AuditEngine::with_config(
            store,
            AuditConfig { memo_bound: 4096 },
        ));
        let supplier_names: Vec<String> =
            (0..suppliers).map(|i| format!("supplier{}", i)).collect();
        engine.register_pattern(
            "from-supplier",
            Pattern::originated_at(GroupExpr::any_of(supplier_names.clone())),
        );
        let mut chain = supplier_names;
        chain.extend((0..relays).map(|i| format!("relay{}", i)));
        engine.register_pattern(
            "chain-only",
            Pattern::only_touched_by(GroupExpr::any_of(chain)),
        );

        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                workers: auditors + 1,
                core,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // The simulation streams its deliveries through the batching client —
        // the paper's trusted middleware talking to remote provenance-aware
        // storage.
        let client = AuditClient::connect_with(
            addr,
            ClientConfig {
                batch_size: 8,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let system = workload::supply_chain(suppliers, relays, items_per_supplier);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                ..SimConfig::default()
            },
        );
        let mut recorder = RemoteRecorder::new(client);
        sim.run_with_sink(10_000_000, &mut recorder).unwrap();
        let delivered = sim.metrics().messages_delivered;
        let (recorded, _client) = recorder.finish().unwrap();
        assert_eq!(recorded, delivered);
        assert_eq!(
            engine.stats().ingested,
            recorded as u64,
            "the flush barrier drained every batch into the engine"
        );

        // Concurrent wire clients: every request kind, checked against the
        // in-process engine answering the identical request on the same store.
        let handles: Vec<_> = (0..auditors)
            .map(|t| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    let mut client = AuditClient::connect(addr).unwrap();
                    for s in 0..suppliers {
                        for k in 0..items_per_supplier {
                            let value = item(s, k);
                            let requests = [
                                AuditRequest::VetValue {
                                    value: value.clone(),
                                    pattern: "from-supplier".into(),
                                },
                                AuditRequest::VetValue {
                                    value: value.clone(),
                                    pattern: "chain-only".into(),
                                },
                                AuditRequest::AuditTrail {
                                    value: value.clone(),
                                },
                                AuditRequest::OriginOf { value },
                                AuditRequest::WhoTouched {
                                    principal: Principal::new(format!("relay{}", t % relays)),
                                },
                            ];
                            for request in &requests {
                                let over_wire = client.request(request).unwrap();
                                let in_process = engine.handle(request);
                                assert_eq!(
                                    over_wire.outcome, in_process.outcome,
                                    "wire and in-process disagree on {}",
                                    request
                                );
                            }
                            // And the verdicts are the *right* ones.
                            let vet = client
                                .request(&AuditRequest::VetValue {
                                    value: item(s, k),
                                    pattern: "from-supplier".into(),
                                })
                                .unwrap();
                            assert!(matches!(
                                vet.outcome,
                                AuditOutcome::Vetted { verdict: true, .. }
                            ));
                            let origin = client
                                .request(&AuditRequest::OriginOf { value: item(s, k) })
                                .unwrap();
                            assert_eq!(
                                origin.outcome,
                                AuditOutcome::Origin {
                                    principal: Some(Principal::new(format!("supplier{}", s)))
                                }
                            );
                        }
                    }
                    client.stats().unwrap()
                })
            })
            .collect();
        for handle in handles {
            let stats = handle.join().unwrap();
            assert_eq!(stats.busy_rejections, 0, "queries never see back-pressure");
        }

        // The whole interrogation is on the metrics plane: both policies'
        // latency histograms filled on the vet hot path, the wire snapshot
        // matches the engine, and the exposition lints clean.
        let mut probe = AuditClient::connect(addr).unwrap();
        let report = probe.metrics().unwrap();
        assert_eq!(report.snapshot.engine, engine.stats());
        let names: Vec<&str> = report
            .snapshot
            .policies
            .iter()
            .map(|p| p.policy.as_str())
            .collect();
        assert_eq!(names, ["chain-only", "from-supplier"]);
        let vets_floor = (auditors * suppliers * items_per_supplier) as u64;
        for policy in &report.snapshot.policies {
            assert!(
                policy.latency.count >= vets_floor,
                "policy {} timed only {} of ≥{} vets",
                policy.policy,
                policy.latency.count,
                vets_floor
            );
            assert_eq!(
                policy.latency.counts.iter().sum::<u64>() + policy.latency.overflow,
                policy.latency.count,
                "histogram buckets account for every observation"
            );
            assert_eq!(
                policy.vets_passed + policy.vets_failed,
                policy.latency.count
            );
        }
        validate_exposition(&report.exposition).unwrap();
        assert!(report
            .exposition
            .contains("piprov_vet_latency_seconds_bucket{policy=\"from-supplier\""));
        drop(probe);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn flooding_a_one_deep_queue_counts_busy_in_engine_stats() {
    for core in ServerCore::all() {
        let dir = temp_dir("flood", core);
        let engine = Arc::new(AuditEngine::open(&dir).unwrap());
        let server = AuditServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServeConfig {
                queue_capacity: 1,
                core,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        server.ingest_queue().set_paused(true);

        let record = |i: u64| {
            ProvenanceRecord::new(
                i,
                "s",
                Operation::Send,
                "m",
                Value::Channel(Channel::new(format!("flood{}", i))),
                Provenance::single(Event::output(Principal::new("s"), Provenance::empty())),
            )
        };
        let mut client = AuditClient::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.ingest_batch(vec![record(0)]).unwrap(),
            IngestOutcome::Acked { .. }
        ));
        let floods = 20u64;
        let mut busy = 0u64;
        for i in 1..=floods {
            match client.ingest_batch(vec![record(i)]).unwrap() {
                IngestOutcome::Busy { queue_depth } => {
                    busy += 1;
                    assert_eq!(queue_depth, 1, "the queue never grows past its bound");
                }
                IngestOutcome::Acked { .. } => panic!("paused 1-deep queue accepted a flood batch"),
            }
        }
        assert_eq!(busy, floods);
        let stats = engine.stats();
        assert_eq!(stats.busy_rejections, floods, "every rejection is counted");
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.ingested, 0);

        // Releasing the queue lands exactly the one accepted batch.
        server.ingest_queue().set_paused(false);
        client.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.ingested, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(engine.record_count(), 1);
        // The gauges the flood exercised publish coherently at quiescence.
        let metrics = engine.metrics();
        assert_eq!(metrics.engine, stats);
        let text = metrics.exposition();
        assert!(text.contains("piprov_queue_depth 0\n"));
        assert!(text.contains("piprov_snapshot_lag 0\n"));
        assert!(text.contains(&format!("piprov_busy_rejections_total {}\n", floods)));
        drop(client);
        server.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
