//! Cross-crate property-based tests: invariants of the calculus that must
//! hold for *every* system, checked on randomly generated ones.

use piprov::core::configuration::{structurally_congruent, Configuration};
use piprov::core::generate::{GeneratorConfig, SystemGenerator};
use piprov::core::pattern::TrivialPatterns;
use piprov::core::reduction::successors;
use piprov::logs::{denote, has_correct_provenance, log_leq, MonitoredExecutor};
use piprov::prelude::*;
use proptest::prelude::*;

fn generated_system(seed: u64) -> System<AnyPattern> {
    SystemGenerator::new(GeneratorConfig::small(), seed).system()
}

proptest! {
    // 48 cases by default; the PIPROV_PROPTEST_CASES environment variable
    // overrides it (handled inside with_cases) for deeper CI runs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reduction preserves closedness: a closed system only ever reduces to
    /// closed systems.
    #[test]
    fn reduction_preserves_closedness(seed in 0u64..10_000) {
        let system = generated_system(seed);
        prop_assert!(system.is_closed());
        for (_, successor) in successors(&system, &TrivialPatterns).unwrap() {
            prop_assert!(successor.is_closed());
        }
    }

    /// Normalizing to a configuration and back is structurally congruent to
    /// the original system.
    #[test]
    fn configuration_round_trip_is_congruent(seed in 0u64..10_000) {
        let system = generated_system(seed);
        let cfg = Configuration::from_system(&system);
        prop_assert!(structurally_congruent(&system, &cfg.to_system()));
    }

    /// The number of messages in flight changes by exactly one on every
    /// communication step (+1 on send, −1 on receive) and is unchanged by
    /// match steps.
    #[test]
    fn message_count_accounting(seed in 0u64..10_000) {
        let system = generated_system(seed);
        let before = system.message_count();
        for (event, successor) in successors(&system, &TrivialPatterns).unwrap() {
            let after = successor.message_count();
            match event.kind {
                StepKind::Send { .. } => prop_assert_eq!(after, before + 1),
                StepKind::Receive { .. } => prop_assert_eq!(after + 1, before),
                StepKind::IfTrue { .. } | StepKind::IfFalse { .. } => {
                    prop_assert_eq!(after, before)
                }
            }
        }
    }

    /// Theorem 1 on random runs: correctness of provenance holds after
    /// every step of a monitored run of a random system.
    #[test]
    fn correctness_holds_on_random_runs(seed in 0u64..5_000) {
        let system = generated_system(seed);
        let mut exec = MonitoredExecutor::new(&system, TrivialPatterns)
            .with_policy(SchedulerPolicy::Random { seed });
        for _ in 0..15 {
            if exec.step().unwrap().is_none() {
                break;
            }
        }
        prop_assert!(has_correct_provenance(&exec.as_monitored_system()));
    }

    /// Every in-flight value's denotation is supported by the global log of
    /// the run that produced it (the pointwise content of Definition 3).
    #[test]
    fn in_flight_denotations_below_log(seed in 0u64..5_000) {
        let system = generated_system(seed);
        let mut exec = MonitoredExecutor::new(&system, TrivialPatterns);
        for _ in 0..20 {
            if exec.step().unwrap().is_none() {
                break;
            }
        }
        for message in &exec.executor().configuration().messages {
            for value in &message.payload {
                prop_assert!(log_leq(&denote(value), exec.log()));
            }
        }
    }

    /// Provenance growth: a receive step extends the consumed value's
    /// provenance by exactly one event relative to the message it consumed.
    #[test]
    fn receive_extends_provenance_by_one(seed in 0u64..10_000) {
        let system = generated_system(seed);
        // Drive a few sends first so receives are possible.
        let mut exec = Executor::new(&system, TrivialPatterns)
            .with_policy(SchedulerPolicy::Random { seed });
        for _ in 0..6 {
            let before: usize = exec
                .configuration()
                .messages
                .iter()
                .map(|m| m.payload.iter().map(|v| v.provenance.len()).sum::<usize>())
                .sum();
            let msg_count = exec.configuration().message_count();
            match exec.step().unwrap() {
                None => break,
                Some(event) => {
                    if let StepKind::Receive { .. } = event.kind {
                        let after: usize = exec
                            .configuration()
                            .messages
                            .iter()
                            .map(|m| m.payload.iter().map(|v| v.provenance.len()).sum::<usize>())
                            .sum();
                        // One message left the pool; the remaining pool's
                        // total top-level provenance length can only have
                        // shrunk by that message's contribution.
                        prop_assert!(after <= before);
                        prop_assert_eq!(exec.configuration().message_count() + 1, msg_count);
                    }
                }
            }
        }
    }

    /// The executor's statistics are consistent with its trace.
    #[test]
    fn stats_match_trace(seed in 0u64..10_000) {
        let system = generated_system(seed);
        let mut exec = Executor::new(&system, TrivialPatterns);
        exec.run(60).unwrap();
        let stats = exec.stats();
        let sends = exec.trace().iter().filter(|e| matches!(e.kind, StepKind::Send { .. })).count();
        let receives = exec.trace().iter().filter(|e| matches!(e.kind, StepKind::Receive { .. })).count();
        prop_assert_eq!(stats.sends, sends);
        prop_assert_eq!(stats.receives, receives);
        prop_assert_eq!(stats.steps, exec.trace().len());
    }
}
