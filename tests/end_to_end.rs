//! Cross-crate integration tests: simulator + store + static analysis +
//! meta-theory working together on realistic scenarios.

use piprov::analysis::{analyze, elide_redundant_checks, AnalysisConfig, SetVerdict};
use piprov::logs::has_correct_provenance;
use piprov::prelude::*;
use piprov::runtime::baseline;
use piprov::runtime::workload;
use piprov::runtime::{Fault, FaultPlan};
use piprov::store::{ProvenanceStore, StoreConfig, StoreQuery};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("piprov-e2e-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pipeline through the simulator with full tracking, then persist and
/// audit: the sink's values carry the whole chain.
#[test]
fn simulate_persist_and_audit_a_pipeline() {
    let system = workload::pipeline(5, 4);
    // Simulate on a jittery but lossless network.
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig {
                base_latency: 2,
                jitter: 6,
                ..NetworkConfig::reliable()
            },
            ..SimConfig::default()
        },
    );
    let stop = sim.run(1_000_000).unwrap();
    assert_eq!(stop, SimStop::Terminated);
    assert_eq!(
        sim.metrics().messages_sent,
        sim.metrics().messages_delivered
    );
    assert!(sim.metrics().max_provenance_size >= 8);

    // Record the same workload into a store and audit it.
    let dir = temp_dir("pipeline");
    let mut store = ProvenanceStore::open_with(
        &dir,
        StoreConfig {
            segment_budget: 2_048,
            sync_every_append: false,
        },
    )
    .unwrap();
    run_and_record(&system, TrivialPatterns, &mut store, 100_000).unwrap();
    assert!(store.stats().segments >= 1);
    let query = StoreQuery::new(&store);
    for k in 0..4 {
        let trail = query.audit_trail(&Value::Channel(Channel::new(format!("v{}", k))));
        assert_eq!(trail.origin(), Some(Principal::new("stage0")));
        assert!(trail.involves(&Principal::new("sink")));
        // 5 sends + 5 receives along the chain.
        assert_eq!(trail.records.len(), 10);
    }
    // Close and reopen the store (recovery) and check the data survived.
    drop(store);
    let reopened = ProvenanceStore::open(&dir).unwrap();
    assert_eq!(reopened.len(), 40);
    std::fs::remove_dir_all(&dir).ok();
}

/// The forgery scenario end to end: manual tagging admits the forgery,
/// calculus tracking rejects it, and the monitored checker flags a forged
/// annotation as incorrect.
#[test]
fn forgery_is_defeated_by_tracking_and_detected_by_monitoring() {
    // Manual tagging: some scheduling accepts the forged value.
    let mut forged_accepted = false;
    for seed in 0..30 {
        let mut exec = Executor::new(&baseline::forgery_under_manual_tagging(), TrivialPatterns)
            .with_policy(SchedulerPolicy::Random { seed });
        exec.run(10_000).unwrap();
        let accepted: Vec<String> = exec
            .configuration()
            .messages
            .iter()
            .filter(|m| m.channel.as_str() == "accepted")
            .flat_map(|m| m.payload.iter().map(|v| v.value.as_str().to_string()))
            .collect();
        if accepted.contains(&"v2".to_string()) {
            forged_accepted = true;
            break;
        }
    }
    assert!(forged_accepted);

    // Calculus-level tracking: never.
    for seed in 0..30 {
        let mut exec = Executor::new(
            &baseline::forgery_under_provenance_tracking(),
            SamplePatterns::new(),
        )
        .with_policy(SchedulerPolicy::Random { seed });
        exec.run(10_000).unwrap();
        let accepted: Vec<String> = exec
            .configuration()
            .messages
            .iter()
            .filter(|m| m.channel.as_str() == "accepted")
            .flat_map(|m| m.payload.iter().map(|v| v.value.as_str().to_string()))
            .collect();
        assert!(!accepted.contains(&"v2".to_string()));
    }
}

/// The fault injector's provenance forgery is caught by the correctness
/// checker when the tampered state is wrapped as a monitored system with
/// the true log.
#[test]
fn injected_forgery_breaks_correctness() {
    use piprov::logs::MonitoredSystem;
    // a relays v through s to channel `out`, on which nobody listens, so
    // the (forged) message is still observable at the end of the run.
    let system: System<AnyPattern> = System::par(
        System::located(
            "a",
            Process::output(Identifier::channel("m"), Identifier::channel("v")),
        ),
        System::located(
            "s",
            Process::input(
                Identifier::channel("m"),
                AnyPattern,
                "x",
                Process::output(Identifier::channel("out"), Identifier::variable("x")),
            ),
        ),
    );
    let mut faults = FaultPlan::new();
    faults.push(Fault::ForgeOnChannel {
        time: 0,
        channel: Channel::new("out"),
        claimed_sender: Principal::new("mallory"),
    });
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            faults,
            ..SimConfig::default()
        },
    );
    sim.run(1_000_000).unwrap();
    // Reconstruct a monitored system: the true log is what really happened
    // (we recompute it by running the same system unfaulted), while the
    // faulted configuration contains the forged annotation.
    let mut honest = piprov::logs::MonitoredExecutor::new(&system, TrivialPatterns);
    honest.run(1_000_000).unwrap();
    let tampered = MonitoredSystem::with_log(honest.log().clone(), sim.configuration().to_system());
    // The forged claim (sent by mallory) is not supported by the true log.
    assert!(!has_correct_provenance(&tampered));
}

/// Static analysis + simulator: eliding provably redundant checks does not
/// change observable behaviour but removes pattern-check work.
#[test]
fn static_elision_preserves_competition_behaviour() {
    let system = workload::competition(4, 2);
    let result = analyze(&system, AnalysisConfig::default());
    // The judges' Any-checks and some organiser branches are provable.
    assert!(result.checks.len() >= 6);
    assert!(!result.redundant_checks().is_empty());
    assert!(result
        .checks
        .iter()
        .any(|c| c.verdict == SetVerdict::AlwaysMatches));

    let optimized = elide_redundant_checks(&system, AnalysisConfig::default());
    let run = |s: &System<Pattern>| {
        let mut exec = Executor::new(s, SamplePatterns::new())
            .with_policy(SchedulerPolicy::Random { seed: 11 });
        exec.run(100_000).unwrap();
        let mut collected: Vec<(String, String)> = exec
            .trace()
            .iter()
            .filter_map(|e| match &e.kind {
                StepKind::Receive {
                    channel, payload, ..
                } if channel.as_str() == "pub" => {
                    Some((e.principal.to_string(), payload[0].as_str().to_string()))
                }
                _ => None,
            })
            .collect();
        collected.sort();
        collected
    };
    assert_eq!(run(&system), run(&optimized));
}

/// Lossy networks deliver less, and what is delivered still carries
/// correct provenance relative to a monitored replay.
#[test]
fn lossy_simulation_metrics_are_consistent() {
    let system = workload::fan_out(6, 3, 5);
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::lossy(0.3, 99),
            ..SimConfig::default()
        },
    );
    sim.run(1_000_000).unwrap();
    let m = sim.metrics();
    assert_eq!(
        m.messages_sent,
        m.messages_delivered + m.messages_dropped - m.messages_duplicated,
        "conservation of messages"
    );
    assert!(m.delivery_ratio() < 1.0);
    assert!(m.receives <= m.messages_delivered);
}

/// The competition runs identically through the simulator and the plain
/// executor when the network is reliable (virtual time does not change
/// which results each contestant gets).
#[test]
fn simulator_and_executor_agree_on_competition_results() {
    let system = workload::competition(3, 2);
    let mut sim = Simulation::new(
        &system,
        SamplePatterns::new(),
        SimConfig {
            network: NetworkConfig::reliable(),
            scheduler_seed: 3,
            ..SimConfig::default()
        },
    );
    let stop = sim.run(1_000_000).unwrap();
    assert_eq!(stop, SimStop::Terminated);
    // Everyone got their result: no unclaimed messages, 3 pub deliveries.
    assert_eq!(sim.configuration().message_count(), 0);
    let mut exec = Executor::new(&system, SamplePatterns::new());
    exec.run(100_000).unwrap();
    assert_eq!(exec.configuration().message_count(), 0);
}
