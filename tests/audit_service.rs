//! End-to-end test of the audit service: a simulated supply chain streams
//! its delivered records into a shared `AuditEngine` through the
//! `AuditRecorder` sink while several auditor threads interrogate it
//! concurrently — the full wiring the `audit_service` example
//! demonstrates, held to assertions.
//!
//! The workload size scales with `PIPROV_PROPTEST_CASES` (the workspace's
//! deep-run CI knob), so the concurrent paths — sharded interning, the
//! store's reader-writer lock, the bounded pattern memos — get hammered
//! harder in CI than in a quick local run.

use piprov::audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRecorder, AuditRequest};
use piprov::core::provenance::interner_shard_stats;
use piprov::prelude::*;
use piprov::runtime::workload;
use piprov::store::ProvenanceStore;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-audit-it-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Scale factor: 1 by default, grows with the CI deep-run knob.
fn scale() -> usize {
    std::env::var("PIPROV_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|cases| (cases / 256).clamp(1, 8))
        .unwrap_or(1)
}

fn item(s: usize, k: usize) -> Value {
    Value::Channel(Channel::new(format!("item{}_{}", s, k)))
}

#[test]
fn audit_service_end_to_end_under_concurrent_auditors() {
    let suppliers = 3usize;
    let relays = 2usize;
    let items_per_supplier = 4 * scale();
    let auditors = 4usize;

    let dir = temp_dir("e2e");
    let store = ProvenanceStore::open(&dir).unwrap();
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 512 },
    ));
    let supplier_names: Vec<String> = (0..suppliers).map(|i| format!("supplier{}", i)).collect();
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of(supplier_names.clone())),
    );
    let mut chain = supplier_names;
    chain.extend((0..relays).map(|i| format!("relay{}", i)));
    engine.register_pattern(
        "chain-only",
        Pattern::only_touched_by(GroupExpr::any_of(chain)),
    );

    // Drive the simulated deployment; every delivery streams into the
    // engine through the sink.
    let system = workload::supply_chain(suppliers, relays, items_per_supplier);
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            ..SimConfig::default()
        },
    );
    let mut recorder = AuditRecorder::new(Arc::clone(&engine));
    sim.run_with_sink(10_000_000, &mut recorder).unwrap();
    let recorded = recorder.finish().unwrap();
    let total_items = suppliers * items_per_supplier;
    assert_eq!(
        recorded,
        total_items * (relays + 1),
        "one record per delivery: every item crosses every lane"
    );
    assert_eq!(engine.record_count(), recorded);

    // Concurrent auditors: every policy holds for every item, from every
    // thread, while each thread also runs trail/origin/touched queries.
    let verdicts: Vec<usize> = thread::scope(|scope| {
        let handles: Vec<_> = (0..auditors)
            .map(|t| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let mut passed = 0usize;
                    for s in 0..suppliers {
                        for k in 0..items_per_supplier {
                            for pattern in ["from-supplier", "chain-only"] {
                                let response = engine.handle(&AuditRequest::VetValue {
                                    value: item(s, k),
                                    pattern: pattern.into(),
                                });
                                let AuditOutcome::Vetted { verdict, .. } = response.outcome else {
                                    panic!("expected vet outcome");
                                };
                                assert!(verdict, "item{}_{} fails {}", s, k, pattern);
                                assert!(
                                    response.stats.index_hits > 0,
                                    "vets are answered via the index"
                                );
                                passed += 1;
                            }
                            let origin =
                                engine.handle(&AuditRequest::OriginOf { value: item(s, k) });
                            assert_eq!(
                                origin.outcome,
                                AuditOutcome::Origin {
                                    principal: Some(Principal::new(format!("supplier{}", s)))
                                }
                            );
                        }
                    }
                    let touched = engine.handle(&AuditRequest::WhoTouched {
                        principal: Principal::new(format!("relay{}", t % relays)),
                    });
                    let AuditOutcome::Touched { values, .. } = touched.outcome else {
                        panic!("expected touched outcome");
                    };
                    assert_eq!(values.len(), total_items, "every item crossed every relay");
                    passed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total_vets: usize = verdicts.iter().sum();
    assert_eq!(total_vets, auditors * total_items * 2);

    // Trail queries see the full per-item story.
    let trail = engine.handle(&AuditRequest::AuditTrail { value: item(0, 0) });
    let AuditOutcome::Trail(trail_data) = trail.outcome else {
        panic!("expected trail outcome");
    };
    assert_eq!(trail_data.records.len(), relays + 1);
    assert_eq!(trail_data.origin(), Some(Principal::new("supplier0")));
    assert!(trail_data.involves(&Principal::new("relay0")));
    assert_eq!(trail.stats.index_hits, relays + 1);

    // Engine accounting is consistent with what the threads did.
    let stats = engine.stats();
    assert_eq!(stats.ingested as usize, recorded);
    assert_eq!(stats.vets_passed as usize, total_vets);
    assert_eq!(stats.vets_failed, 0);
    assert!(stats.memo_hits > 0, "warm vets hit the memo");

    // The memos stayed under their configured bound throughout.
    for name in ["from-supplier", "chain-only"] {
        let memo = engine.pattern_memo_stats(name).unwrap();
        assert!(memo.entries <= 512, "{}: {} > 512", name, memo.entries);
    }

    // The metrics plane accounted for every concurrent vet: per-policy
    // verdict counters and latency histograms add up exactly, and the
    // exposition lints clean.
    let metrics = engine.metrics();
    assert_eq!(metrics.engine, stats);
    let names: Vec<&str> = metrics.policies.iter().map(|p| p.policy.as_str()).collect();
    assert_eq!(names, ["chain-only", "from-supplier"]);
    for policy in &metrics.policies {
        assert_eq!(policy.vets_passed as usize, auditors * total_items);
        assert_eq!(policy.vets_failed, 0);
        assert_eq!(policy.latency.count, policy.vets_passed);
        assert_eq!(
            policy.latency.counts.iter().sum::<u64>() + policy.latency.overflow,
            policy.latency.count,
            "no vet observation fell between histogram buckets"
        );
        assert_eq!(
            policy.memo,
            engine.pattern_memo_stats(&policy.policy).unwrap()
        );
    }
    validate_exposition(&metrics.exposition()).unwrap();

    // Sharded interner sanity.  Exact shard-sum-vs-aggregate equality is
    // checked in piprov-core on a quiescent secondary table; here sibling
    // tests intern concurrently, so only stable facts are asserted.
    let shards = interner_shard_stats();
    let aggregated = piprov::core::provenance::interner_stats();
    assert_eq!(shards.len(), aggregated.shards);
    assert!(
        aggregated.interned_nodes > 0 && aggregated.misses > 0,
        "the workload interned fresh histories"
    );
    assert!(
        shards.iter().map(|s| s.entries).sum::<usize>() > 0,
        "shards own the interned nodes"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forged_histories_fail_policy_at_the_audit_layer() {
    // The attack the paper's introduction warns about, caught after the
    // fact: an adversary re-tags deliveries on a channel, and the audit
    // service's vet (trusted recorded provenance vs policy) flags them.
    let dir = temp_dir("forgery");
    let engine = Arc::new(AuditEngine::open(&dir).unwrap());
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::single("supplier0")),
    );
    let system = workload::supply_chain(1, 1, 2);
    let mut faults = piprov::runtime::FaultPlan::default();
    faults.push(piprov::runtime::Fault::ForgeOnChannel {
        time: 0,
        channel: Channel::new("lane2"),
        claimed_sender: Principal::new("mallory"),
    });
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            faults,
            ..SimConfig::default()
        },
    );
    let mut recorder = AuditRecorder::new(Arc::clone(&engine));
    sim.run_with_sink(1_000_000, &mut recorder).unwrap();
    recorder.finish().unwrap();

    // The newest record of each item is the forged lane2 delivery, so the
    // policy vet fails — while the origin query, which scans the whole
    // trail oldest-first, survives the forgery and still names the
    // honest supplier.
    for k in 0..2 {
        let value = Value::Channel(Channel::new(format!("item0_{}", k)));
        let vet = engine.handle(&AuditRequest::VetValue {
            value: value.clone(),
            pattern: "from-supplier".into(),
        });
        assert!(
            matches!(vet.outcome, AuditOutcome::Vetted { verdict: false, .. }),
            "forged history must fail the policy: {:?}",
            vet.outcome
        );
        // The trail still carries the honest lane1 record, so the
        // oldest-output origin survives the forgery on lane2.
        let origin = engine.handle(&AuditRequest::OriginOf { value });
        assert_eq!(
            origin.outcome,
            AuditOutcome::Origin {
                principal: Some(Principal::new("supplier0"))
            }
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
