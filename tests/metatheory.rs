//! Integration tests for the meta-theory of §3 (experiments E5–E8):
//! the ⊑ ordering, erasure, preservation of correctness, and the
//! incompleteness counterexample — checked on the paper's own systems, on
//! exhaustively explored small systems and on randomly generated ones.

use piprov::core::configuration::structurally_congruent;
use piprov::core::generate::{GeneratorConfig, SystemGenerator};
use piprov::core::pattern::TrivialPatterns;
use piprov::core::reduction::successors;
use piprov::logs::{
    check_correctness_preserved, denote, explore_correctness, explore_systems,
    has_complete_provenance, has_correct_provenance, incompleteness_counterexample, log_leq,
    monitored_successors, Action, ExploreOptions, Log, MonitoredExecutor, MonitoredSystem, Term,
};
use piprov::prelude::*;

fn random_monitored_runs(seed: u64, steps: usize) -> MonitoredSystem<AnyPattern> {
    let mut generator = SystemGenerator::new(GeneratorConfig::small(), seed);
    let system = generator.system();
    let mut exec = MonitoredExecutor::new(&system, TrivialPatterns);
    exec.run(steps).unwrap();
    exec.as_monitored_system()
}

/// E5 — Proposition 1: ⊑ is reflexive and transitive on closed logs
/// (antisymmetry holds on the quotient by mutual ⊑ by construction).
#[test]
fn ordering_is_reflexive_and_transitive_on_generated_logs() {
    for seed in 0..10u64 {
        let monitored = random_monitored_runs(seed, 30);
        let log = monitored.log().clone();
        assert!(log_leq(&log, &log), "reflexivity on {}", log);
        // Prefixes of the global log are below the full log (transitivity
        // through the chain of one-action extensions).
        let actions: Vec<Action> = log.actions().into_iter().cloned().collect();
        for take in 0..actions.len() {
            let suffix = Log::chain(actions[actions.len() - take..].to_vec());
            assert!(
                log_leq(&suffix, &log),
                "suffix of length {} below full log",
                take
            );
        }
    }
}

/// E5 — denotations of annotated values are always below the global log
/// that produced them, and the empty log is below everything.
#[test]
fn ordering_bottom_element() {
    for seed in 0..5u64 {
        let monitored = random_monitored_runs(seed, 20);
        assert!(log_leq(&Log::Empty, monitored.log()));
    }
}

/// E6 — Proposition 2 (erasure): monitored reduction and plain reduction
/// have exactly the same system successors.
#[test]
fn erasure_monitored_and_plain_reduction_agree() {
    for seed in 0..15u64 {
        let mut generator = SystemGenerator::new(GeneratorConfig::small(), seed);
        let system = generator.system();
        let monitored = MonitoredSystem::new(system.clone());
        let plain: Vec<_> = successors(&system, &TrivialPatterns)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let monitored_succ: Vec<_> = monitored_successors(&monitored, &TrivialPatterns)
            .unwrap()
            .into_iter()
            .map(|(_, m)| m.system)
            .collect();
        assert_eq!(plain.len(), monitored_succ.len());
        for (p, m) in plain.iter().zip(monitored_succ.iter()) {
            assert!(structurally_congruent(p, m));
        }
    }
}

/// E7 — Theorem 1 on the full reachable state space of the paper's
/// counterexample system and of the authentication example.
#[test]
fn correctness_preserved_exhaustively_on_small_systems() {
    let outcome = explore_correctness(
        &incompleteness_counterexample(),
        &TrivialPatterns,
        ExploreOptions::default(),
    )
    .unwrap();
    match outcome {
        Ok(o) => assert!(o.states >= 3),
        Err(bad) => panic!("correctness violated: {}", bad.system),
    }

    let auth = piprov::runtime::workload::authentication();
    let outcome = explore_correctness(
        &MonitoredSystem::new(auth),
        &SamplePatterns::new(),
        ExploreOptions {
            max_depth: 16,
            max_states: 20_000,
        },
    )
    .unwrap();
    match outcome {
        Ok(o) => assert!(o.states > 5),
        Err(bad) => panic!("correctness violated: {}", bad.system),
    }
}

/// E7 — Theorem 1 along random runs of random systems: correctness holds
/// at every step.
#[test]
fn correctness_preserved_on_random_runs() {
    for seed in 0..10u64 {
        let mut generator = SystemGenerator::new(GeneratorConfig::small(), seed);
        let system = generator.system();
        let mut exec = MonitoredExecutor::new(&system, TrivialPatterns)
            .with_policy(SchedulerPolicy::Random { seed });
        for _ in 0..25 {
            let monitored = exec.as_monitored_system();
            assert!(
                has_correct_provenance(&monitored),
                "correctness violated for seed {} at {}",
                seed,
                monitored.system
            );
            if exec.step().unwrap().is_none() {
                break;
            }
        }
    }
}

/// E7 — the BFS variant bounded by depth, as exposed by the properties API.
#[test]
fn correctness_preserved_bfs() {
    let market: System<AnyPattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
        ),
    ]);
    let result =
        check_correctness_preserved(&MonitoredSystem::new(market), &TrivialPatterns, 8, 5_000)
            .unwrap();
    match result {
        Ok(states) => assert!(states >= 10),
        Err(bad) => panic!("violated at {}", bad.system),
    }
}

/// E8 — Proposition 3: the paper's counterexample loses completeness after
/// one step, while correctness survives.
#[test]
fn incompleteness_counterexample_behaves_as_in_the_paper() {
    let m = incompleteness_counterexample();
    assert!(has_correct_provenance(&m));
    assert!(has_complete_provenance(&m));
    let succ = monitored_successors(&m, &TrivialPatterns).unwrap();
    assert_eq!(succ.len(), 1);
    let after = &succ[0].1;
    assert!(has_correct_provenance(after));
    assert!(!has_complete_provenance(after));
}

/// Forging provenance breaks correctness — the property the global log is
/// there to detect.
#[test]
fn forged_annotations_violate_correctness() {
    // Take a legitimately produced monitored state and tamper with the
    // provenance of one in-flight value.
    let system: System<AnyPattern> = System::par(
        System::located(
            "a",
            Process::output(Identifier::channel("m"), Identifier::channel("v")),
        ),
        System::located(
            "b",
            Process::input(Identifier::channel("m"), AnyPattern, "x", Process::nil()),
        ),
    );
    let m = MonitoredSystem::new(system);
    let (_, after_send) = monitored_successors(&m, &TrivialPatterns)
        .unwrap()
        .remove(0);
    assert!(has_correct_provenance(&after_send));
    // Forge: claim the value was sent by "mallory" instead.
    let forged_system: System<AnyPattern> = System::message(Message::new(
        "m",
        AnnotatedValue::channel("v").sent_by(&Principal::new("mallory"), &Provenance::empty()),
    ));
    let forged = MonitoredSystem::with_log(after_send.log().clone(), forged_system);
    assert!(!has_correct_provenance(&forged));
}

/// The denotation of every value produced during a run is supported by the
/// global log (the pointwise statement underlying Definition 3).
#[test]
fn denotations_are_below_the_global_log() {
    let system = piprov::runtime::workload::pipeline(4, 2);
    let mut exec = MonitoredExecutor::new(&system, TrivialPatterns);
    exec.run(10_000).unwrap();
    let monitored = exec.as_monitored_system();
    for observed in monitored.values() {
        if let Term::Value(_) = observed.term {
            let value = AnnotatedValue::new(
                match &observed.term {
                    Term::Value(v) => v.clone(),
                    _ => unreachable!(),
                },
                observed.provenance.clone(),
            );
            assert!(log_leq(&denote(&value), monitored.log()));
        }
    }
}

/// Exhaustive exploration of the market agrees with the hand count of
/// distinct states, demonstrating the structural-congruence deduplication.
#[test]
fn exploration_counts_market_states() {
    let market: System<AnyPattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
        ),
    ]);
    let outcome = explore_systems(&market, &TrivialPatterns, ExploreOptions::default(), |_| {
        true
    })
    .unwrap()
    .unwrap();
    assert!(outcome.exhaustive);
    // initial; a sent; b sent; both sent; c took v1 (b pending / sent);
    // c took v2 (a pending / sent); final states after both sends and one
    // consumption; the exact count is implementation-canonical but bounded.
    assert!(outcome.states >= 6 && outcome.states <= 12, "{}", outcome);
}
