//! Metamorphic tests of the interned provenance representation.
//!
//! The interner caches `len`, `depth` and `total_size` on every node and
//! replaces structural equality with id comparison; the `compact` (flat,
//! eagerly expanded) and `cons` (non-interned cons list) ablation
//! representations compute the same quantities independently, by recursion
//! over their own structure.  These tests drive the *real* reduction
//! semantics over randomly parameterised workloads from
//! `piprov::runtime::workload`, harvest every provenance annotation the
//! middleware vets, and check that the representations agree on
//!
//! * every derived quantity (`len`, `depth`, `total_size`),
//! * round-tripping (converting away from the interned form and back lands
//!   on the *same* interned node), and
//! * pattern-satisfaction verdicts (the memoized NFA over the interned
//!   DAG versus the paper's reference matcher over a reconstruction from
//!   the flat copy).

use piprov::core::interpreter::{Executor, SchedulerPolicy};
use piprov::core::pattern::{AnyPattern, PatternLanguage, TrivialPatterns};
use piprov::core::provenance::compact::FlatProvenance;
use piprov::core::provenance::cons::ConsProvenance;
use piprov::core::provenance::{ProvId, Provenance};
use piprov::core::system::System;
use piprov::patterns::{matching, CompiledPattern, GroupExpr, Pattern};
use piprov::runtime::workload;
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// A pattern language that records every provenance it is asked to vet —
/// exactly the annotations the reduction semantics inspects at receives.
struct Harvest<L> {
    inner: L,
    seen: Rc<RefCell<Vec<Provenance>>>,
}

impl<L: PatternLanguage> PatternLanguage for Harvest<L> {
    type Pattern = L::Pattern;

    fn satisfies(&self, provenance: &Provenance, pattern: &Self::Pattern) -> bool {
        self.seen.borrow_mut().push(provenance.clone());
        self.inner.satisfies(provenance, pattern)
    }
}

/// Runs `system` for up to `steps` reduction steps and returns the distinct
/// provenances the middleware vetted (deduplicated by interned id).
fn harvest(system: &System<AnyPattern>, steps: usize, seed: u64) -> Vec<Provenance> {
    let seen = Rc::new(RefCell::new(Vec::new()));
    let matcher = Harvest {
        inner: TrivialPatterns,
        seen: seen.clone(),
    };
    let mut exec = Executor::new(system, matcher).with_policy(SchedulerPolicy::Random { seed });
    exec.run(steps).expect("workload systems are closed");
    let mut distinct = Vec::new();
    let mut ids: HashSet<ProvId> = HashSet::new();
    for p in seen.borrow().iter() {
        if ids.insert(p.id()) {
            distinct.push(p.clone());
        }
    }
    distinct
}

/// Patterns exercising every connective, anchored on a principal actually
/// occurring in the harvested provenance (when one exists).
fn probe_patterns(provenance: &Provenance) -> Vec<Pattern> {
    let mut patterns = vec![
        Pattern::Any,
        Pattern::Empty,
        Pattern::send(GroupExpr::all(), Pattern::Any).star(),
    ];
    if let Some(principal) = provenance.principals_involved().into_iter().next() {
        let name = principal.as_str();
        patterns.push(Pattern::immediately_sent_by(GroupExpr::single(name)));
        patterns.push(Pattern::originated_at(GroupExpr::single(name)));
        patterns.push(Pattern::only_touched_by(GroupExpr::single(name)));
        patterns.push(
            Pattern::receive(GroupExpr::single(name), Pattern::Any)
                .or(Pattern::send(GroupExpr::all(), Pattern::Any))
                .then(Pattern::Any),
        );
    }
    patterns
}

/// The core metamorphic check for one harvested provenance.
fn check_representations_agree(kappa: &Provenance) {
    let flat = FlatProvenance::from_shared(kappa);
    let cons = ConsProvenance::from_shared(kappa);

    // Derived quantities: cached (interned) vs. independently recomputed.
    assert_eq!(flat.len(), kappa.len(), "len disagrees on {}", kappa);
    assert_eq!(cons.len(), kappa.len());
    assert_eq!(
        flat.total_size(),
        kappa.total_size(),
        "total_size disagrees on {}",
        kappa
    );
    assert_eq!(cons.total_size(), kappa.total_size());
    assert_eq!(flat.depth(), kappa.depth(), "depth disagrees on {}", kappa);
    assert_eq!(cons.depth(), kappa.depth());
    assert!(kappa.dag_size() <= kappa.total_size());

    // Round trips land on the same interned node, not merely an equal one.
    assert_eq!(flat.to_shared().id(), kappa.id());
    assert_eq!(cons.to_shared().id(), kappa.id());

    // Pattern verdicts: memoized NFA over the interned DAG vs. the
    // reference matcher over the reconstruction from the flat copy.
    let reconstructed = flat.to_shared();
    for pattern in probe_patterns(kappa) {
        let compiled = CompiledPattern::compile(&pattern);
        let nfa_verdict = compiled.matches(kappa);
        assert_eq!(
            nfa_verdict,
            matching::satisfies(&reconstructed, &pattern),
            "verdict disagrees on {} ⊨ {}",
            kappa,
            pattern
        );
        // The memo must be stable: asking again cannot flip the verdict.
        assert_eq!(nfa_verdict, compiled.matches(kappa));
    }
}

proptest! {
    // Each case runs a full (bounded) simulation; keep the default modest
    // and let PIPROV_PROPTEST_CASES raise it in CI.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn representations_agree_on_pipeline_workloads(
        stages in 2usize..6,
        messages in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let system = workload::pipeline(stages, messages);
        for kappa in harvest(&system, 400, seed) {
            check_representations_agree(&kappa);
        }
    }

    #[test]
    fn representations_agree_on_fan_out_workloads(
        producers in 1usize..4,
        consumers in 1usize..3,
        messages in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let system = workload::fan_out(producers, consumers, messages);
        for kappa in harvest(&system, 400, seed) {
            check_representations_agree(&kappa);
        }
    }

    #[test]
    fn representations_agree_on_ring_workloads(
        nodes in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let system = workload::ring(nodes);
        for kappa in harvest(&system, 400, seed) {
            check_representations_agree(&kappa);
        }
    }
}

#[test]
fn pipeline_provenance_is_actually_harvested() {
    // Guard against the metamorphic suite silently checking nothing: a
    // 4-stage pipeline must vet non-empty provenance at every relay.
    let system = workload::pipeline(4, 2);
    let harvested = harvest(&system, 1_000, 7);
    assert!(
        !harvested.is_empty(),
        "workload produced no vetted provenance"
    );
    assert!(
        harvested.iter().any(|k| !k.is_empty()),
        "some vetted provenance is non-empty"
    );
    assert!(
        harvested.iter().any(|k| k.len() > 1),
        "relayed values accumulate history across hops"
    );
}
