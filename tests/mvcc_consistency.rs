//! Facade-level MVCC consistency: a live simulated deployment streams
//! records into the engine while concurrent auditors check the snapshot
//! contract end to end — through `piprov::prelude`, exactly as a user
//! would wire it.
//!
//! Unlike the audit crate's `mvcc` harness (which fixes the workload so
//! every answer is computable from the watermark alone), the simulation's
//! delivery order here is not known to the auditors — so they assert the
//! *schedule-independent* half of the contract on every single response:
//!
//! * watermarks are monotone per auditor;
//! * no response ever mentions a record above its own watermark (no torn
//!   reads);
//! * audit trails only ever grow, by whole suffixes (consistent prefixes:
//!   a later trail of the same value starts with the earlier one);
//! * after the run, a pinned snapshot and the live engine agree on every
//!   probe, and the watermark equals the recorded total (read-your-writes
//!   at the facade boundary).
//!
//! The workload scales with `PIPROV_PROPTEST_CASES` (the CI deep-run
//! knob).

use piprov::audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRecorder, AuditRequest};
use piprov::prelude::*;
use piprov::runtime::workload;
use piprov::store::{ProvenanceStore, SequenceNumber};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("piprov-mvcc-it-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Scale factor: 1 by default, grows with the CI deep-run knob.
fn scale() -> usize {
    std::env::var("PIPROV_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|cases| (cases / 256).clamp(1, 8))
        .unwrap_or(1)
}

fn item(s: usize, k: usize) -> Value {
    Value::Channel(Channel::new(format!("item{}_{}", s, k)))
}

/// Sequence numbers a response mentions, for the ≤-watermark check.
fn mentioned_sequences(outcome: &AuditOutcome) -> Vec<SequenceNumber> {
    match outcome {
        AuditOutcome::Vetted { sequence, .. } => vec![*sequence],
        AuditOutcome::Trail(trail) => trail.records.iter().map(|r| r.sequence).collect(),
        AuditOutcome::Touched { records, .. } => records.clone(),
        _ => Vec::new(),
    }
}

#[test]
fn concurrent_auditors_see_consistent_prefixes_of_a_live_simulation() {
    let suppliers = 3usize;
    let relays = 2usize;
    let items_per_supplier = 4 * scale();
    let auditors = 4usize;

    let dir = temp_dir("live");
    let store = ProvenanceStore::open(&dir).unwrap();
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 512 },
    ));
    let supplier_names: Vec<String> = (0..suppliers).map(|i| format!("supplier{}", i)).collect();
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of(supplier_names)),
    );

    let writer_done = Arc::new(AtomicBool::new(false));
    let recorded = thread::scope(|scope| {
        // The writer: a live simulation streaming deliveries into the
        // engine (one published snapshot per delivered message).
        let writer = {
            let engine = Arc::clone(&engine);
            let writer_done = Arc::clone(&writer_done);
            scope.spawn(move || {
                let system = workload::supply_chain(suppliers, relays, items_per_supplier);
                let mut sim = Simulation::new(
                    &system,
                    TrivialPatterns,
                    SimConfig {
                        network: NetworkConfig::reliable(),
                        ..SimConfig::default()
                    },
                );
                let mut recorder = AuditRecorder::new(engine);
                sim.run_with_sink(10_000_000, &mut recorder).unwrap();
                let recorded = recorder.finish().unwrap();
                writer_done.store(true, Ordering::Relaxed);
                recorded
            })
        };

        // The auditors: every response checked against the contract.
        let checkers: Vec<_> = (0..auditors)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let writer_done = Arc::clone(&writer_done);
                scope.spawn(move || {
                    let mut last_watermark = 0u64;
                    let mut trails_seen: HashMap<String, Vec<SequenceNumber>> = HashMap::new();
                    let mut rounds = 0u64;
                    loop {
                        let done = writer_done.load(Ordering::Relaxed);
                        for s in 0..suppliers {
                            for k in 0..items_per_supplier {
                                let target = item(s, (k + t) % items_per_supplier);
                                for request in [
                                    AuditRequest::AuditTrail {
                                        value: target.clone(),
                                    },
                                    AuditRequest::VetValue {
                                        value: target.clone(),
                                        pattern: "from-supplier".into(),
                                    },
                                    AuditRequest::WhoTouched {
                                        principal: Principal::new(format!("relay{}", t % relays)),
                                    },
                                    AuditRequest::OriginOf {
                                        value: target.clone(),
                                    },
                                ] {
                                    let response = engine.handle(&request);
                                    // Monotone watermarks.
                                    assert!(
                                        response.watermark >= last_watermark,
                                        "watermark went backwards: {} after {}",
                                        response.watermark,
                                        last_watermark
                                    );
                                    last_watermark = response.watermark;
                                    // No torn reads: nothing above the
                                    // watermark is ever visible.
                                    for sequence in mentioned_sequences(&response.outcome) {
                                        assert!(
                                            sequence <= response.watermark,
                                            "record {} leaked above watermark {}",
                                            sequence,
                                            response.watermark
                                        );
                                    }
                                    // Consistent prefixes: the same
                                    // value's trail only ever grows by a
                                    // suffix.
                                    if let (
                                        AuditRequest::AuditTrail { value },
                                        AuditOutcome::Trail(trail),
                                    ) = (&request, &response.outcome)
                                    {
                                        let sequences: Vec<SequenceNumber> =
                                            trail.records.iter().map(|r| r.sequence).collect();
                                        let earlier = trails_seen
                                            .entry(value.to_string())
                                            .or_default();
                                        assert!(
                                            sequences.len() >= earlier.len()
                                                && sequences[..earlier.len()] == earlier[..],
                                            "trail of {} shrank or rewrote history: {:?} after {:?}",
                                            value,
                                            sequences,
                                            earlier
                                        );
                                        *earlier = sequences;
                                    }
                                }
                            }
                        }
                        rounds += 1;
                        if done {
                            break;
                        }
                    }
                    rounds
                })
            })
            .collect();

        let recorded = writer.join().unwrap();
        for checker in checkers {
            assert!(checker.join().unwrap() > 0, "auditors audited");
        }
        recorded
    });

    // Read-your-writes at the facade boundary: everything the recorder
    // streamed is visible, and the watermark names it.
    assert_eq!(engine.record_count(), recorded);
    assert_eq!(engine.watermark(), recorded as u64);
    assert_eq!(engine.stats().snapshot_lag, 0);

    // A pinned snapshot and the live (now idle) engine agree on every
    // probe — and stay frozen through further ingest.
    let pinned = engine.snapshot();
    for s in 0..suppliers {
        for k in 0..items_per_supplier {
            for request in [
                AuditRequest::AuditTrail { value: item(s, k) },
                AuditRequest::OriginOf { value: item(s, k) },
                AuditRequest::VetValue {
                    value: item(s, k),
                    pattern: "from-supplier".into(),
                },
            ] {
                let live = engine.handle(&request);
                let frozen = engine.handle_at(&pinned, &request);
                assert_eq!(live.outcome, frozen.outcome);
                assert_eq!(live.watermark, frozen.watermark);
                assert!(matches!(
                    frozen.outcome,
                    AuditOutcome::Trail(_)
                        | AuditOutcome::Origin { .. }
                        | AuditOutcome::Vetted { verdict: true, .. }
                ));
            }
        }
    }
    engine.sync().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_batch_publishes_before_returning() {
    let dir = temp_dir("ryw");
    let engine = AuditEngine::open(&dir).unwrap();
    let make = |t: u64, v: &str| {
        piprov::store::ProvenanceRecord::new(
            t,
            "a",
            piprov::store::Operation::Send,
            "m",
            Value::Channel(Channel::new(v)),
            Provenance::single(Event::output(Principal::new("a"), Provenance::empty())),
        )
    };
    let sequences = engine
        .ingest_batch(vec![make(1, "x"), make(2, "y")])
        .unwrap();
    // The publish happened before ingest_batch returned: the very next
    // query must see both records at (or above) the returned sequences.
    let top = *sequences.last().unwrap();
    assert!(engine.watermark() >= top);
    for v in ["x", "y"] {
        let response = engine.handle(&AuditRequest::AuditTrail {
            value: Value::Channel(Channel::new(v)),
        });
        assert!(response.watermark >= top);
        assert!(matches!(response.outcome, AuditOutcome::Trail(_)));
    }
    std::fs::remove_dir_all(&dir).ok();
}
