//! Integration tests reproducing the worked examples of the paper
//! (experiments E1–E4 of DESIGN.md), end to end across the workspace
//! crates.

use piprov::prelude::*;
use piprov::runtime::workload;

/// E1 — the §1 "market of values": without provenance the consumer may end
/// up with either value; with a pattern it can only get the one genuinely
/// sent by `a`.
#[test]
fn intro_market() {
    // Without provenance restrictions both outcomes are reachable.
    let naive: System<AnyPattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
        ),
    ]);
    let mut got_v1 = false;
    let mut got_v2 = false;
    for seed in 0..32 {
        let mut exec =
            Executor::new(&naive, TrivialPatterns).with_policy(SchedulerPolicy::Random { seed });
        exec.run(1_000).unwrap();
        for event in exec.trace() {
            if let StepKind::Receive { payload, .. } = &event.kind {
                match payload[0].as_str() {
                    "v1" => got_v1 = true,
                    "v2" => got_v2 = true,
                    _ => {}
                }
            }
        }
    }
    assert!(
        got_v1 && got_v2,
        "both outcomes must be reachable without vetting"
    );

    // With the pattern `a!Any; Any` only v1 is ever consumed.
    let vetted: System<Pattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(
                Identifier::channel("n"),
                parse_pattern("a!Any; Any").unwrap(),
                "x",
                Process::nil(),
            ),
        ),
    ]);
    for seed in 0..32 {
        let mut exec = Executor::new(&vetted, SamplePatterns::new())
            .with_policy(SchedulerPolicy::Random { seed });
        exec.run(1_000).unwrap();
        for event in exec.trace() {
            if let StepKind::Receive { payload, .. } = &event.kind {
                assert_eq!(payload[0].as_str(), "v1");
            }
        }
        // b's message is never consumed.
        assert_eq!(exec.configuration().message_count(), 1);
    }
}

/// E2 — §2.3.2 authentication: `a` insists on the immediate sender, `b` on
/// the originator.
#[test]
fn authentication() {
    let system = workload::authentication();
    for seed in 0..32 {
        let mut exec = Executor::new(&system, SamplePatterns::new())
            .with_policy(SchedulerPolicy::Random { seed });
        let outcome = exec.run(10_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        for event in exec.trace() {
            if let StepKind::Receive { payload, .. } = &event.kind {
                match event.principal.as_str() {
                    "a" => assert_eq!(payload[0].as_str(), "v1"),
                    "b" => assert_eq!(payload[0].as_str(), "v2"),
                    _ => {}
                }
            }
        }
        assert_eq!(exec.configuration().message_count(), 0);
    }
}

/// E3 — §2.3.2 auditing: the value ends up at `c` with provenance
/// `c?ε; s!ε; s?ε; a!ε`, implicating exactly a, s and c.
#[test]
fn auditing() {
    let system = workload::auditing();
    let mut exec = Executor::new(&system, TrivialPatterns);
    let outcome = exec.run(10_000).unwrap();
    assert_eq!(outcome.reason, StopReason::Quiescent);

    // Find the provenance c received: it is recorded in the trace as the
    // last receive, and the value's annotation inside c's continuation has
    // the expected shape.  Reconstruct it by replaying through a monitored
    // executor and checking the store-backed audit instead.
    let received: Vec<_> = exec
        .trace()
        .iter()
        .filter(|e| matches!(e.kind, StepKind::Receive { .. }))
        .collect();
    assert_eq!(received.len(), 2, "s receives, then c receives");
    assert_eq!(received[1].principal, Principal::new("c"));

    // The paper's provenance for the value at c: c?ε; s!ε; s?ε; a!ε.
    // Check it via the store recorder, which captures annotations.
    let dir = std::env::temp_dir().join(format!("piprov-test-audit-{}", std::process::id()));
    let mut store = ProvenanceStore::open(&dir).unwrap();
    run_and_record(&system, TrivialPatterns, &mut store, 10_000).unwrap();
    let query = StoreQuery::new(&store);
    let trail = query.audit_trail(&Value::Channel(Channel::new("v")));
    let involved: Vec<String> = trail.principals.iter().map(|p| p.to_string()).collect();
    assert!(involved.contains(&"a".to_string()));
    assert!(involved.contains(&"s".to_string()));
    assert!(involved.contains(&"c".to_string()));
    assert!(!involved.contains(&"b".to_string()));
    assert_eq!(trail.origin(), Some(Principal::new("a")));
    // The forwarded message's provenance has the paper's shape: the value c
    // eventually holds is this plus c's own receive event added on delivery
    // (`c?ε; s!ε; s?ε; a!ε` in the paper's notation).
    let forwarded = trail
        .records
        .iter()
        .rfind(|r| {
            r.channel == Channel::new("nprime") && r.operation == piprov::store::Operation::Send
        })
        .unwrap();
    let shape: Vec<(String, Direction)> = forwarded
        .provenance
        .iter()
        .map(|e| (e.principal.to_string(), e.direction))
        .collect();
    assert_eq!(
        shape,
        vec![
            ("s".to_string(), Direction::Output),
            ("s".to_string(), Direction::Input),
            ("a".to_string(), Direction::Output),
        ],
        "the forwarded message carries s!; s?; a!"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// E4 — §2.3.2 photography competition: every contestant gets exactly its
/// own result, and the provenance shapes match the paper's κ-expressions.
#[test]
fn photo_competition() {
    let contestants = 3;
    let judges = 2;
    let system = workload::competition(contestants, judges);
    for seed in [0u64, 1, 2, 3] {
        let mut exec = Executor::new(&system, SamplePatterns::new())
            .with_policy(SchedulerPolicy::Random { seed });
        let outcome = exec.run(100_000).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // Every contestant received exactly one published pair, their own.
        let mut collected = std::collections::BTreeMap::new();
        for event in exec.trace() {
            if let StepKind::Receive {
                channel, payload, ..
            } = &event.kind
            {
                if channel.as_str() == "pub" {
                    collected.insert(event.principal.to_string(), payload[0].as_str().to_string());
                }
            }
        }
        assert_eq!(collected.len(), contestants);
        for (who, entry) in &collected {
            assert_eq!(entry, &format!("e{}", who.trim_start_matches('c')));
        }
        // Judges only saw entries from their assigned contestants.
        for event in exec.trace() {
            if let StepKind::Receive {
                channel, payload, ..
            } = &event.kind
            {
                if channel.as_str().starts_with("in") {
                    let judge: usize = event.principal.as_str()[1..].parse().unwrap();
                    let entry: usize = payload[0].as_str()[1..].parse().unwrap();
                    assert_eq!(entry % judges, judge);
                }
            }
        }
        assert_eq!(exec.configuration().message_count(), 0);
    }
}

/// The paper's expected provenance shape for a competition result as seen
/// by the contestant: the entry's provenance starts with the contestant's
/// own receive on `pub` and ends with its original submission.
#[test]
fn photo_competition_provenance_shape() {
    let system = workload::competition(2, 1);
    // Run monitored so we can inspect annotated values and correctness.
    let mut exec = piprov::logs::MonitoredExecutor::new(&system, SamplePatterns::new());
    exec.run(100_000).unwrap();
    let monitored = exec.as_monitored_system();
    assert!(piprov::logs::has_correct_provenance(&monitored));
    // Every entry value still recorded anywhere must have provenance whose
    // oldest event is the contestant's original send on sub.
    for observed in monitored.values() {
        let name = observed.term.to_string();
        if let Some(idx) = name.strip_prefix('e') {
            if observed.provenance.is_empty() {
                continue;
            }
            let oldest = observed.provenance.to_vec().last().cloned().unwrap();
            assert_eq!(oldest.principal, Principal::new(format!("c{}", idx)));
            assert_eq!(oldest.direction, Direction::Output);
        }
    }
}
