//! The [`any`] entry point: a strategy over a type's whole domain.

use crate::strategy::StandardAny;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
///
/// In this shim that is any type with a [`rand::Standard`] distribution
/// (`bool`, the integer types, floats); structured types build their
/// strategies by combination instead.
pub trait Arbitrary: rand::Standard + fmt::Debug {}

impl<T: rand::Standard + fmt::Debug> Arbitrary for T {}

/// A strategy generating uniformly across `T`'s domain, e.g.
/// `any::<bool>()`.
pub fn any<T: Arbitrary>() -> StandardAny<T> {
    StandardAny(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::for_case("any_bool", 0);
        let strategy = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
