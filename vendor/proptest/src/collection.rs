//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_range_and_element_strategy() {
        let strategy = vec(Just(7u8), 0..5);
        let mut rng = TestRng::for_case("vec", 0);
        let mut lengths_seen = [false; 5];
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x == 7));
            lengths_seen[v.len()] = true;
        }
        assert!(
            lengths_seen.iter().all(|&s| s),
            "every length in 0..5 drawn"
        );
    }
}
