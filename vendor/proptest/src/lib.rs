//! Offline shim for the subset of the `proptest` API that piprov's
//! property-based tests use.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the real `proptest` with the same surface syntax:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(…)]`, multiple
//!   `#[test]` functions, `name in strategy` bindings),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` and
//!   `boxed`, strategies for integer ranges, tuples, [`Just`](strategy::Just),
//!   weighted [`prop_oneof!`], [`collection::vec`] and
//!   [`arbitrary::any`],
//! * [`ProptestConfig`](test_runner::ProptestConfig) with `with_cases`.
//!
//! Differences from the real crate, deliberately accepted for a test-only
//! shim: generation is purely random with **no shrinking** (a failing case
//! is reported verbatim instead of minimized), and runs are deterministic —
//! the RNG seed is derived from the test name and case index, so a failure
//! reproduces on re-run without a regression file.  Set
//! `PIPROV_PROPTEST_SEED` to an integer to perturb the stream and explore
//! different cases.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! `Cargo.toml`; `proptest-regressions/` directories it would create are
//! already gitignored (see the repository README).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest-using module starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// In this shim it is a plain `assert!`; the surrounding harness catches
/// the panic and reports the generated inputs before re-raising.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks among strategies producing the same value type, optionally
/// weighted: `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Declares property tests: each function body runs for every generated
/// case of its `name in strategy` bindings.
///
/// In a test module each function carries `#[test]` above it, exactly like
/// the real crate; the doctest below omits the attribute (doctests never
/// run unit tests) and calls the generated function directly instead.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_functions! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_functions! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each function, threading
/// the shared config expression through.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_functions {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ( $($strategy,)+ );
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let values =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let described = format!("{:?}", values);
                let ( $($arg,)+ ) = values;
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs ({}) = {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        stringify!($($arg),+),
                        described,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_functions! { ($config) $($rest)* }
    };
}
