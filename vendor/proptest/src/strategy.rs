//! The [`Strategy`] trait and the combinators piprov's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

macro_rules! fmt_as_name {
    ($name:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str($name)
        }
    };
}

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value *tree* (no shrinking): a
/// strategy is just a generator.  Values must be `Debug` so that a failing
/// case can be reported.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies of the
    /// same value type can be stored together (recursion, [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fmt_as_name!("BoxedStrategy");
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice among strategies with the same value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// A union of `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one arm with weight > 0"
        );
        Union { arms, total_weight }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            if roll < *weight as u64 {
                return strategy.generate(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll below total weight always lands in an arm")
    }
}

impl<T> fmt::Debug for Union<T> {
    fmt_as_name!("Union");
}

/// Yields values of `T`'s whole domain via [`rand`]'s standard
/// distribution; built by [`any`](crate::arbitrary::any).
pub struct StandardAny<T>(pub(crate) PhantomData<T>);

impl<T> fmt::Debug for StandardAny<T> {
    fmt_as_name!("StandardAny");
}

impl<T: rand::Standard + fmt::Debug> Strategy for StandardAny<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn just_yields_its_value() {
        assert_eq!(Just(9u8).generate(&mut rng()), 9);
    }

    #[test]
    fn map_applies() {
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng());
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (5u64..8).generate(&mut r);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b) = ((0u64..4), Just("x")).generate(&mut r);
        assert!(a < 4);
        assert_eq!(b, "x");
    }

    #[test]
    fn union_respects_zero_weight() {
        let s = crate::prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r), 1);
        }
    }

    #[test]
    fn union_reaches_every_positive_arm() {
        let s = crate::prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r)] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn boxed_preserves_behaviour() {
        let s = (3u64..4).boxed();
        assert_eq!(s.generate(&mut rng()), 3);
    }
}
