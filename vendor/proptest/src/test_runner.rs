//! Run configuration and the RNG behind the [`proptest!`](crate::proptest)
//! harness.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property runs, mirroring the real crate's
/// `ProptestConfig { cases, .. }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    ///
    /// Deviation from the real crate, so every suite shares one deep-run
    /// knob: the `PIPROV_PROPTEST_CASES` environment variable (when set to
    /// a parsable integer) overrides the explicit count, letting CI run
    /// far more cases without a code change.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases("PIPROV_PROPTEST_CASES").unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like the real crate; `PIPROV_PROPTEST_CASES` (then
    /// `PROPTEST_CASES`, which the real crate honors) overrides it.
    fn default() -> Self {
        let cases = env_cases("PIPROV_PROPTEST_CASES")
            .or_else(|| env_cases("PROPTEST_CASES"))
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

fn env_cases(variable: &str) -> Option<u32> {
    std::env::var(variable).ok().and_then(|v| v.parse().ok())
}

/// The RNG driving generation: seeded per `(test name, case index)`, so
/// every run of a test binary explores the same deterministic sequence and
/// a failure message's case index is reproducible.
///
/// Set `PIPROV_PROPTEST_SEED` to an integer to shift the whole stream and
/// explore fresh cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name gives stable, well-spread per-test seeds.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env_seed = std::env::var("PIPROV_PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        let seed = hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ env_seed;
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers both the explicit count and the env override, so no
    /// parallel test observes a half-set environment variable.  The
    /// ambient value (CI exports `PIPROV_PROPTEST_CASES` for its deep
    /// runs) is saved and restored so the assertions are deterministic in
    /// any environment.
    #[test]
    fn config_with_cases_and_env_override() {
        let ambient = std::env::var("PIPROV_PROPTEST_CASES").ok();
        std::env::remove_var("PIPROV_PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
        std::env::set_var("PIPROV_PROPTEST_CASES", "777");
        assert_eq!(ProptestConfig::with_cases(48).cases, 777);
        std::env::set_var("PIPROV_PROPTEST_CASES", "not-a-number");
        assert_eq!(
            ProptestConfig::with_cases(48).cases,
            48,
            "garbage falls back"
        );
        std::env::remove_var("PIPROV_PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(9).cases, 9);
        if let Some(value) = ambient {
            std::env::set_var("PIPROV_PROPTEST_CASES", value);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(TestRng::for_case("t", 3).next_u64(), c.next_u64());
        assert_ne!(
            TestRng::for_case("t", 0).next_u64(),
            TestRng::for_case("u", 0).next_u64()
        );
    }
}
