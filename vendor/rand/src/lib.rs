//! Offline shim for the subset of the `rand` 0.8 API that piprov uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation with the same method
//! signatures: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a small,
//! fast, well-distributed 64-bit PRNG — more than adequate for scheduling
//! decisions, random system generation and fault injection, which is all
//! piprov asks of it.  It is **not** the same stream as the real `StdRng`
//! (ChaCha12), so seeds produce different (but still deterministic)
//! sequences; nothing in the workspace depends on the concrete stream.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words; the object-safe core every other method
/// builds on (mirrors `rand_core::RngCore` in spirit).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain via
/// [`Rng::gen`] (mirrors `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, the same construction
    /// the real crate uses.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly (mirrors
/// `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the real crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection sampling, so small bounds
/// are exactly uniform rather than modulo-biased.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                // Correct for signed types too: the two's-complement bit
                // pattern of `end - start` is the span for any nonempty range.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span_minus_one = end.wrapping_sub(start) as u64;
                if span_minus_one == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(uniform_below(rng, span_minus_one + 1) as $ty)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: SplitMix64.
    ///
    /// Deterministic for a given seed, but a *different* stream than the
    /// real `rand::rngs::StdRng` (ChaCha12).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let x = rng.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
            let z = rng.gen_range(0..10usize);
            assert!(z < 10);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 drawn in 200 samples");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u64);
    }
}
