//! Offline shim for the subset of the `bytes` crate that `piprov-store`
//! uses: [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits, with
//! the real crate's semantics (big-endian multi-byte accessors, cheap
//! cloning of `Bytes` via a shared backing buffer, panics on overrun that
//! mirror the originals).
//!
//! The build environment has no access to crates.io; swapping back to the
//! real crate is a one-line change in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a contiguous cursor over bytes (the subset of
/// `bytes::Buf` piprov uses).  Multi-byte reads are big-endian, like the
/// real crate.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Moves the cursor forward `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

/// Write access to a growable byte buffer (the subset of `bytes::BufMut`
/// piprov uses).  Multi-byte writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply cloneable, immutable view into a shared byte buffer.
///
/// Reading through [`Buf`] moves this view's cursor without copying or
/// affecting clones, matching the real `Bytes`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the (unconsumed) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view's bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// Both views share the backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {} > {}",
            at,
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Reads the next `len` bytes as a new shared view, advancing the
    /// cursor (the `Buf::copy_to_bytes` of the real crate, which piprov
    /// calls on `Bytes` directly).
    ///
    /// # Panics
    ///
    /// Panics if `len > self.remaining()`.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(
            len <= self.remaining(),
            "copy_to_bytes out of bounds: {} > {}",
            len,
            self.remaining()
        );
        self.split_to(len)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance out of bounds: {} > {}",
            cnt,
            self.len()
        );
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");
        let mut frozen = buf.freeze();
        assert_eq!(frozen.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16(), 0xBEEF);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(frozen.copy_to_bytes(4).as_slice(), b"tail");
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn wire_format_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(&buf[..], &[0, 0, 0, 1]);
    }

    #[test]
    fn clones_share_but_cursor_is_per_view() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.get_u8(), 1);
        assert_eq!(a.remaining(), 3);
        assert_eq!(b.remaining(), 4, "clone's cursor unaffected");
    }

    #[test]
    fn copy_to_bytes_advances_past_the_view() {
        let mut buf = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = buf.copy_to_bytes(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(buf.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn deref_supports_slicing() {
        let buf = Bytes::from(vec![9, 8, 7]);
        assert_eq!(&buf[..2], &[9, 8]);
        assert_eq!(buf.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overrun_panics() {
        let mut buf = Bytes::from(vec![1]);
        let _ = buf.copy_to_bytes(2);
    }
}
