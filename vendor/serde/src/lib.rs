//! Offline shim for `serde`.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the real `serde`.  `Serialize` and `Deserialize` are **marker
//! traits** here: the piprov data model derives them so that downstream
//! code can state serialization bounds and the real crate can be swapped in
//! (one line in the workspace `Cargo.toml`) without touching any derive
//! site, but no wire format is implemented.  The binary encoding piprov
//! actually persists lives in `piprov-store::codec` and does not go through
//! serde.
//!
//! The derive macros (re-exported from the vendored `serde_derive`) emit
//! the marker impls with serde's usual bound behaviour: every type
//! parameter of the deriving type is required to implement the trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the `::serde::…` paths the derives emit resolve inside this crate's
// own tests (the same trick the real serde uses).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Implemented by `#[derive(Serialize)]`; carries no methods in this shim.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Implemented by `#[derive(Deserialize)]`; carries no methods in this
/// shim.  The real trait's `<'de>` lifetime parameter is dropped because no
/// borrowing deserializer exists here; derive sites are unaffected since
/// they never name the lifetime.
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {}
        impl Deserialize for $ty {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<T: Deserialize + ?Sized> Deserialize for Box<T> {}
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {}
impl<T: Deserialize + ?Sized> Deserialize for std::sync::Arc<T> {}
impl Serialize for str {}
impl<T: Serialize> Serialize for [T] {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum Sum {
        _A,
        _B(String),
    }

    #[derive(Serialize, Deserialize)]
    pub struct Generic<T> {
        _items: Vec<T>,
    }

    fn assert_both<T: Serialize + Deserialize>() {}

    #[test]
    fn derives_emit_marker_impls() {
        assert_both::<Plain>();
        assert_both::<Sum>();
        assert_both::<Generic<u64>>();
    }
}
