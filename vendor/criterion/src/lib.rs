//! Offline shim for the subset of the `criterion` API that piprov's bench
//! targets use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so this crate keeps
//! `cargo bench` runnable: it measures a mean wall-clock time per iteration
//! over a bounded measurement window and prints one line per benchmark.
//! It does **no** statistical analysis, outlier rejection or HTML
//! reporting — for publication-grade numbers swap the real crate back in
//! (one line in the workspace `Cargo.toml`); every bench target compiles
//! unchanged against either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: holds measurement settings and a CLI filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Samples per benchmark (each sample is many iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// How long to run a benchmark before measuring.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// How long the measured phase of each benchmark runs.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Applies command-line arguments: the first free argument becomes a
    /// substring filter on benchmark ids; harness flags cargo passes
    /// (`--bench`, `--exact`, …) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
                break;
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), f);
        self
    }

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean_ns: None,
        };
        f(&mut bencher);
        match bencher.mean_ns {
            Some(mean_ns) => println!("{:<60} time: [{}]", id, format_ns(mean_ns)),
            None => println!("{:<60} (no measurement: Bencher::iter never called)", id),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(full, f);
        self
    }

    /// Runs one parameterised benchmark; the input is passed back to the
    /// closure by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this shim; the real crate renders the
    /// group's summary here).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, optionally with a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, shown as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the string id a benchmark is reported under.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to each benchmark closure; [`iter`](Bencher::iter) does the
/// timing.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring in samples until
    /// the measurement window is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: at least one call, then as many as fit the window.
        let warm_up_start = Instant::now();
        let mut iters_per_sample: u64 = 0;
        loop {
            black_box(routine());
            iters_per_sample += 1;
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Aim each sample at measurement_time / sample_size using the
        // warm-up's observed rate.
        let warm_up_elapsed = warm_up_start.elapsed().max(Duration::from_nanos(1));
        let per_iter_ns = (warm_up_elapsed.as_nanos() as f64 / iters_per_sample as f64).max(0.1);
        let sample_budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((sample_budget_ns / per_iter_ns).ceil() as u64).max(1);

        let mut total_ns: f64 = 0.0;
        let mut total_iters: u64 = 0;
        let measurement_start = Instant::now();
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total_ns += sample_start.elapsed().as_nanos() as f64;
            total_iters += iters;
            if measurement_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_ns = Some(total_ns / total_iters as f64);
    }
}

/// Renders nanoseconds with the unit criterion would pick.
fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{:.4} ns", ns)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro: either
/// `criterion_group!(name, target1, target2)` or the long form with
/// `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_measures_something() {
        let mut criterion = quick();
        let mut bencher_ran = false;
        criterion.bench_function("smoke", |b| {
            bencher_ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(bencher_ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(0u8)));
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = quick();
        criterion.filter = Some("nomatch".into());
        let mut ran = false;
        criterion.bench_function("other", |_b| ran = true);
        assert!(!ran, "filtered-out benchmarks never invoke their closure");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(format_ns(12.0), "12.0000 ns");
        assert_eq!(format_ns(1_500.0), "1.5000 µs");
        assert_eq!(format_ns(2_000_000.0), "2.0000 ms");
        assert_eq!(format_ns(3e9), "3.0000 s");
    }
}
