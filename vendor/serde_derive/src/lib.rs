//! Offline shim for `serde_derive`.
//!
//! The vendored [`serde`](../serde) crate defines `Serialize` and
//! `Deserialize` as *marker* traits (see its crate docs for why); these
//! derives emit the corresponding marker impls.  The implementation parses
//! just enough of the item — attributes, visibility, `struct`/`enum`
//! keyword, type name, optional generics — with raw `proc_macro` tokens, so
//! it needs no `syn`/`quote` dependency.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The name and generic parameters of the type a derive was applied to.
struct DeriveTarget {
    name: String,
    /// The bare generic parameter names (lifetimes excluded), e.g. `["T"]`.
    type_params: Vec<String>,
}

/// Extracts the type name and generic parameter list from the tokens of a
/// `struct`/`enum`/`union` item.
fn parse_target(input: TokenStream) -> Option<DeriveTarget> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match tokens.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // The attribute body is the next bracketed group.
                tokens.next()?;
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    match tokens.next()? {
                        TokenTree::Ident(name) => break name.to_string(),
                        _ => return None,
                    }
                }
                // `pub`, `pub(crate)` (the group is consumed on its own
                // turn), or other modifiers: keep scanning.
            }
            _ => {}
        }
    };
    // Collect generic parameter names if a `<...>` list follows.
    let mut type_params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 {
                match tokens.next()? {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' => {
                        // A lifetime: swallow its name, it is not a type param.
                        tokens.next()?;
                        expect_param = false;
                    }
                    TokenTree::Ident(ident) if depth == 1 && expect_param => {
                        let word = ident.to_string();
                        if word == "const" {
                            // `const N: usize`: the next ident is a const
                            // param, which still needs to appear in the
                            // impl's parameter list.
                            if let TokenTree::Ident(name) = tokens.next()? {
                                type_params.push(name.to_string());
                            }
                        } else {
                            type_params.push(word);
                        }
                        expect_param = false;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::None => {}
                    _ => {}
                }
            }
        }
    }
    Some(DeriveTarget { name, type_params })
}

/// Emits `impl <trait> for <type>` with the type's own generics forwarded
/// and a `<trait>` bound on every type parameter (mirroring serde's default
/// bound behaviour).
fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let Some(target) = parse_target(input) else {
        // Not a shape we understand; emitting nothing keeps the build
        // going, and any generic use of the trait will say what's missing.
        return TokenStream::new();
    };
    let impl_code = if target.type_params.is_empty() {
        format!("impl {} for {} {{}}", trait_path, target.name)
    } else {
        let params = target.type_params.join(", ");
        let bounds = target
            .type_params
            .iter()
            .map(|p| format!("{}: {}", p, trait_path))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "impl<{params}> {trait_path} for {name}<{params}> where {bounds} {{}}",
            params = params,
            trait_path = trait_path,
            name = target.name,
            bounds = bounds,
        )
    };
    impl_code.parse().unwrap_or_default()
}

/// Derives the shim's marker `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Derives the shim's marker `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
