//! The paper's auditing example (§2.3.2), backed by the provenance store.
//!
//! Principal `a` sends a value for `b` via the intermediary `s`; faulty
//! code at `s` forwards it to `c` instead.  When `c` notices the unexpected
//! value, the provenance `c?ε; s!ε; s?ε; a!ε` — and the audit trail
//! reconstructed from the provenance store — identify exactly which
//! principals were involved in the error.
//!
//! Run with: `cargo run --example auditing`

use piprov::prelude::*;
use piprov::runtime::workload;
use piprov::store::{ProvenanceStore, StoreQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = workload::auditing();
    println!("system:\n  {}\n", system);

    // Run the system while persisting every step into a provenance store.
    let dir = std::env::temp_dir().join(format!("piprov-auditing-{}", std::process::id()));
    let mut store = ProvenanceStore::open(&dir)?;
    let steps = run_and_record(&system, TrivialPatterns, &mut store, 10_000)?;
    println!(
        "executed {} steps; store now holds {} records\n",
        steps,
        store.len()
    );

    // Re-run in-memory to inspect the provenance c ended up with.
    let mut exec = Executor::new(&system, TrivialPatterns);
    exec.run(10_000)?;
    println!("final configuration: {}\n", exec.configuration());

    // The store answers the audit question directly.
    let query = StoreQuery::new(&store);
    let trail = query.audit_trail(&Value::Channel(Channel::new("v")));
    println!("{}\n", trail);

    assert!(trail.involves(&Principal::new("a")));
    assert!(trail.involves(&Principal::new("s")));
    assert!(trail.involves(&Principal::new("c")));
    assert!(
        !trail.involves(&Principal::new("b")),
        "b never touched the value — it is exonerated"
    );
    assert_eq!(trail.origin(), Some(Principal::new("a")));

    // Who handled anything that passed through the suspect intermediary?
    let tainted = query.tainted_by(&Principal::new("s"));
    println!(
        "principals that handled data passing through s: {:?}",
        tainted
    );

    // Activity summary, the starting point of an investigation.
    println!("\nactivity summary:");
    for (principal, count) in query.activity_summary() {
        println!("  {:<8} {} records", principal.to_string(), count);
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("\nthe provenance pinpointed a, s and c as the principals to investigate.");
    Ok(())
}
