//! The paper's photography-competition example (§2.3.2), generalised.
//!
//! Contestants submit entries to the organiser, who routes each entry to a
//! judge according to *who submitted it* (a provenance pattern on the
//! submission), collects the ratings and publishes them.  Each contestant
//! then picks up exactly the result for their own entry, again by pattern:
//! the published pair's first component must have *originated* at that
//! contestant.
//!
//! Run with: `cargo run --example photo_competition`

use piprov::prelude::*;
use piprov::runtime::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let contestants = 5;
    let judges = 2;
    let system = workload::competition(contestants, judges);
    println!(
        "photography competition with {} contestants and {} judges\n",
        contestants, judges
    );

    let mut exec = Executor::new(&system, SamplePatterns::new())
        .with_policy(SchedulerPolicy::Random { seed: 2009 });
    let outcome = exec.run(100_000)?;
    println!("run finished after {} steps\n", outcome.steps);

    // Reconstruct who received which published result.
    println!("results collected by contestants:");
    for event in exec.trace() {
        if let StepKind::Receive {
            channel, payload, ..
        } = &event.kind
        {
            if channel.as_str() == "pub" {
                println!(
                    "  {} collected ({}, {})",
                    event.principal, payload[0], payload[1]
                );
                // Every contestant c{i} collects its own entry e{i}.
                let who = event.principal.as_str().trim_start_matches('c');
                assert_eq!(payload[0].as_str(), format!("e{}", who));
            }
        }
    }

    // Judges only ever rated the entries routed to them.
    println!("\nentries rated by each judge:");
    for event in exec.trace() {
        if let StepKind::Receive {
            channel, payload, ..
        } = &event.kind
        {
            if channel.as_str().starts_with("in") {
                println!("  {} judged {}", event.principal, payload[0]);
                let judge: usize = event.principal.as_str()[1..].parse()?;
                let entry: usize = payload[0].as_str()[1..].parse()?;
                assert_eq!(
                    entry % judges,
                    judge,
                    "the organiser's patterns route entries to the right judge"
                );
            }
        }
    }

    // No unclaimed results remain.
    assert_eq!(exec.configuration().message_count(), 0);
    println!("\nevery contestant received exactly their own result — routing was done");
    println!("entirely by provenance patterns, with no identity fields in the data.");
    Ok(())
}
