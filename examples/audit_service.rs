//! The audit service end to end: a simulated supply chain streams its
//! delivered records into a shared [`AuditEngine`] while several auditor
//! threads interrogate it concurrently.
//!
//! The flow mirrors a production deployment of the paper's model:
//!
//! 1. a `supply_chain` workload runs on the discrete-event simulator; the
//!    [`AuditRecorder`] delivery sink persists one record per delivered
//!    value into the engine's store;
//! 2. policy patterns (`originated at a supplier`, `touched only by the
//!    chain`) are compiled once and registered by name;
//! 3. auditor threads issue `VetValue`, `AuditTrail`, `WhoTouched` and
//!    `OriginOf` requests against the shared engine — answered through
//!    the store indexes and the memoized NFA, never by a full scan.
//!
//! Run with: `cargo run --example audit_service`

use piprov::audit::{AuditConfig, AuditEngine, AuditOutcome, AuditRecorder, AuditRequest};
use piprov::core::provenance::{interner_shard_stats, interner_stats};
use piprov::prelude::*;
use piprov::runtime::workload;
use piprov::store::ProvenanceStore;
use std::sync::Arc;
use std::thread;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SUPPLIERS: usize = 4;
    const RELAYS: usize = 3;
    const ITEMS_PER_SUPPLIER: usize = 8;
    const AUDITORS: usize = 4;

    // 1. Open the engine and register the service's policy patterns.
    let dir = std::env::temp_dir().join(format!("piprov-audit-service-{}", std::process::id()));
    let store = ProvenanceStore::open(&dir)?;
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 4096 },
    ));
    let suppliers: Vec<String> = (0..SUPPLIERS).map(|i| format!("supplier{}", i)).collect();
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of(suppliers.clone())),
    );
    let mut chain: Vec<String> = suppliers.clone();
    chain.extend((0..RELAYS).map(|i| format!("relay{}", i)));
    engine.register_pattern(
        "chain-only",
        Pattern::only_touched_by(GroupExpr::any_of(chain)),
    );

    // 2. Simulate the deployment, streaming deliveries into the engine.
    let system = workload::supply_chain(SUPPLIERS, RELAYS, ITEMS_PER_SUPPLIER);
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            ..SimConfig::default()
        },
    );
    let mut recorder = AuditRecorder::new(Arc::clone(&engine));
    sim.run_with_sink(1_000_000, &mut recorder)?;
    let recorded = recorder.finish()?;
    println!(
        "simulated {} deliveries, recorded {} provenance records\n",
        sim.metrics().messages_delivered,
        recorded
    );

    // 3. Auditors interrogate the engine concurrently.
    let handles: Vec<_> = (0..AUDITORS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mut passed = 0usize;
                for s in 0..SUPPLIERS {
                    for k in 0..ITEMS_PER_SUPPLIER {
                        let item = Value::Channel(Channel::new(format!("item{}_{}", s, k)));
                        for pattern in ["from-supplier", "chain-only"] {
                            let response = engine.handle(&AuditRequest::VetValue {
                                value: item.clone(),
                                pattern: pattern.into(),
                            });
                            if matches!(
                                response.outcome,
                                AuditOutcome::Vetted { verdict: true, .. }
                            ) {
                                passed += 1;
                            }
                        }
                    }
                }
                // Every auditor also runs one investigation of its own.
                let relay = Principal::new(format!("relay{}", t % RELAYS));
                let touched = engine.handle(&AuditRequest::WhoTouched {
                    principal: relay.clone(),
                });
                if let AuditOutcome::Touched { values, .. } = &touched.outcome {
                    println!(
                        "auditor {}: {} touched {} values ({} index hits)",
                        t,
                        relay,
                        values.len(),
                        touched.stats.index_hits
                    );
                }
                passed
            })
        })
        .collect();
    let passed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let expected = AUDITORS * SUPPLIERS * ITEMS_PER_SUPPLIER * 2;
    println!(
        "\nauditors vetted {} histories ({} expected) — all policies hold",
        passed, expected
    );
    assert_eq!(passed, expected);

    // One deep dive: the full story of one item.
    let item = Value::Channel(Channel::new("item0_0"));
    let trail = engine.handle(&AuditRequest::AuditTrail {
        value: item.clone(),
    });
    if let AuditOutcome::Trail(trail_data) = &trail.outcome {
        println!("\n{}", trail_data);
    }
    let origin = engine.handle(&AuditRequest::OriginOf { value: item });
    if let AuditOutcome::Origin {
        principal: Some(principal),
    } = &origin.outcome
    {
        println!(
            "origin: {} ({} index hits, {} events scanned)",
            principal, origin.stats.index_hits, origin.stats.dag_nodes_visited
        );
    }

    // 4. The shared substrates held up under concurrency.
    let engine_stats = engine.stats();
    println!("\nengine: {}", engine_stats);
    println!(
        "ingest: {} batches applied, {} busy rejections, queue depth {}",
        engine_stats.ingest_batches, engine_stats.busy_rejections, engine_stats.queue_depth
    );
    println!(
        "mvcc:   watermark {}, {} snapshots published, snapshot lag {}",
        engine_stats.watermark, engine_stats.snapshots_published, engine_stats.snapshot_lag
    );
    assert_eq!(
        engine_stats.watermark, engine_stats.ingested,
        "after the run every ingested record is visible to readers"
    );
    assert_eq!(engine_stats.snapshot_lag, 0);
    println!("store:  {}", engine.store_stats());
    let memo = engine.pattern_memo_stats("chain-only").unwrap();
    println!(
        "memo:   {} entries (bound {}, {} epochs, {} hits / {} misses)",
        memo.entries, memo.bound, memo.epochs, memo.hits, memo.misses
    );
    assert!(memo.entries <= memo.bound);
    let interner = interner_stats();
    println!(
        "interner: {} nodes over {} shards ({:.1}% hit ratio)",
        interner.interned_nodes,
        interner.shards,
        interner.hit_ratio() * 100.0
    );
    let busiest = interner_shard_stats()
        .into_iter()
        .max_by_key(|s| s.entries)
        .unwrap();
    println!(
        "busiest shard: #{} with {} entries",
        busiest.shard, busiest.entries
    );

    // 5. The same accounting as a scrape endpoint would serve it: the
    //    engine's whole metrics plane — per-policy verdict counters and
    //    vet-latency histograms included — in Prometheus text exposition.
    let metrics = engine.metrics();
    let exposition = metrics.exposition();
    piprov::audit::validate_exposition(&exposition)
        .map_err(|e| format!("exposition failed its own lint: {}", e))?;
    for policy in &metrics.policies {
        println!(
            "policy {}: {} vets timed ({} passed, {} failed)",
            policy.policy, policy.latency.count, policy.vets_passed, policy.vets_failed
        );
    }
    println!("--- prometheus exposition ---");
    print!("{}", exposition);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
