//! A provenance-tracked workflow on a simulated, unreliable network.
//!
//! Runs the pipeline workload through the discrete-event simulator under
//! three middleware configurations — full provenance tracking, tracking
//! with the static analysis having elided redundant checks, and no tracking
//! at all — over both a reliable and a lossy network, and prints the
//! metrics the benchmark harness reports (experiments E9/E12/E13).
//!
//! Run with: `cargo run --example distributed_sim`

use piprov::analysis::{analyze, AnalysisConfig};
use piprov::prelude::*;
use piprov::runtime::workload;

fn run_once(
    label: &str,
    tracking: TrackingMode,
    network: NetworkConfig,
) -> Result<(), Box<dyn std::error::Error>> {
    let system = workload::pipeline(6, 10);
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network,
            tracking,
            ..SimConfig::default()
        },
    );
    let stop = sim.run(1_000_000)?;
    let m = sim.metrics();
    println!("--- {} ({:?}) ---", label, stop);
    println!("{}", m);
    println!("{}\n", sim.network());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== pipeline of 6 stages, 10 messages ==\n");

    run_once(
        "full tracking, reliable network",
        TrackingMode::Full,
        NetworkConfig::reliable(),
    )?;
    run_once(
        "no tracking (stripped), reliable network",
        TrackingMode::Stripped,
        NetworkConfig::reliable(),
    )?;
    run_once(
        "full tracking, lossy network (10% drop, jitter)",
        TrackingMode::Full,
        NetworkConfig::lossy(0.10, 7),
    )?;

    // The static analysis on a pattern-using workload: the competition.
    println!("== static provenance-flow analysis on the competition workload ==\n");
    let competition = workload::competition(6, 2);
    let result = analyze(&competition, AnalysisConfig::default());
    println!("{}", result);
    println!(
        "redundancy ratio: {:.0}% of pattern checks are statically provable",
        result.redundancy_ratio() * 100.0
    );

    // Scale sweep: how simulation cost grows with the number of principals.
    println!("\n== scalability sweep (fan-out workload) ==\n");
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>12}",
        "producers", "consumers", "steps", "virtual time", "wall (ms)"
    );
    for scale in [4usize, 8, 16, 32] {
        let system = workload::fan_out(scale, scale / 2, 4);
        let mut sim = Simulation::new(
            &system,
            TrivialPatterns,
            SimConfig {
                network: NetworkConfig::reliable(),
                ..SimConfig::default()
            },
        );
        sim.run(5_000_000)?;
        let m = sim.metrics();
        println!(
            "{:>10} {:>10} {:>12} {:>14} {:>12.2}",
            scale,
            scale / 2,
            m.steps,
            m.virtual_time,
            m.wall_time.as_secs_f64() * 1000.0
        );
    }
    Ok(())
}
