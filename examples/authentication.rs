//! The paper's authentication example (§2.3.2).
//!
//! Principal `a` accepts on channel `m` only data coming *directly* from
//! `c` (pattern `c!Any; Any`), while `b` accepts only data that
//! *originated* at `d` (pattern `Any; d!Any`), no matter which
//! intermediaries relayed it.
//!
//! Run with: `cargo run --example authentication`

use piprov::prelude::*;
use piprov::runtime::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = workload::authentication();
    println!("system:\n  {}\n", system);

    // Explore every scheduling: whatever the order of events, a ends up
    // with c's value and b with d's relayed value.
    let matcher = SamplePatterns::new();
    let mut exec = Executor::new(&system, matcher).with_policy(SchedulerPolicy::Random { seed: 7 });
    let outcome = exec.run(10_000)?;
    println!("run finished after {} steps; trace:", outcome.steps);
    for event in exec.trace() {
        println!("  {}", event);
    }

    // Check who received what by looking at the receive events.
    let mut a_received = Vec::new();
    let mut b_received = Vec::new();
    for event in exec.trace() {
        if let StepKind::Receive { payload, .. } = &event.kind {
            if event.principal == Principal::new("a") {
                a_received.extend(payload.iter().cloned());
            }
            if event.principal == Principal::new("b") {
                b_received.extend(payload.iter().cloned());
            }
        }
    }
    println!("\na received: {:?}", a_received);
    println!("b received: {:?}", b_received);
    assert_eq!(a_received, vec![Value::Channel(Channel::new("v1"))]);
    assert_eq!(b_received, vec![Value::Channel(Channel::new("v2"))]);

    // The same guarantees hold under every scheduling seed.
    for seed in 0..25 {
        let mut exec = Executor::new(&system, SamplePatterns::new())
            .with_policy(SchedulerPolicy::Random { seed });
        exec.run(10_000)?;
        for event in exec.trace() {
            if let StepKind::Receive { payload, .. } = &event.kind {
                if event.principal == Principal::new("a") {
                    assert_eq!(payload[0].as_str(), "v1", "a only ever accepts c's value");
                }
                if event.principal == Principal::new("b") {
                    assert_eq!(payload[0].as_str(), "v2", "b only ever accepts d's value");
                }
            }
        }
    }
    println!("\nverified across 25 schedulings: the patterns route values by provenance.");
    Ok(())
}
