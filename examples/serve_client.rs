//! The client half of the cross-process audit demo: simulate a supply
//! chain, stream every delivery into the `serve_server` process through
//! the batching wire client, then audit the results over concurrent
//! connections.
//!
//! Run `cargo run --example serve_server` first, then:
//! `cargo run --example serve_client`
//! (both honour `PIPROV_SERVE_ADDR`, default `127.0.0.1:7141`).

use piprov::prelude::*;
use piprov::runtime::workload;
use piprov::serve::ClientConfig;
use std::thread;

/// Shared with `serve_server.rs`: the workload's principal names.
const SUPPLIERS: usize = 4;
const RELAYS: usize = 3;
const ITEMS_PER_SUPPLIER: usize = 8;
const AUDITORS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::var("PIPROV_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7141".to_string());

    // 1. Simulate the deployment, streaming deliveries over the wire in
    //    batches of 16.
    let client = AuditClient::connect_with(
        addr.as_str(),
        ClientConfig {
            batch_size: 16,
            ..ClientConfig::default()
        },
    )?;
    let system = workload::supply_chain(SUPPLIERS, RELAYS, ITEMS_PER_SUPPLIER);
    let mut sim = Simulation::new(
        &system,
        TrivialPatterns,
        SimConfig {
            network: NetworkConfig::reliable(),
            ..SimConfig::default()
        },
    );
    let mut recorder = RemoteRecorder::new(client);
    sim.run_with_sink(1_000_000, &mut recorder)?;
    let (recorded, mut client) = recorder.finish()?;
    println!(
        "simulated {} deliveries, streamed {} records to {}\n",
        sim.metrics().messages_delivered,
        recorded,
        addr
    );

    // 2. Concurrent auditors, each on its own connection, vet every item
    //    against both registered policies.
    let handles: Vec<_> = (0..AUDITORS)
        .map(|t| {
            let addr = addr.clone();
            thread::spawn(move || -> Result<usize, piprov::serve::ClientError> {
                let mut client = AuditClient::connect(addr.as_str())?;
                let mut passed = 0usize;
                for s in 0..SUPPLIERS {
                    for k in 0..ITEMS_PER_SUPPLIER {
                        let item = Value::Channel(Channel::new(format!("item{}_{}", s, k)));
                        for pattern in ["from-supplier", "chain-only"] {
                            let response = client.request(&AuditRequest::VetValue {
                                value: item.clone(),
                                pattern: pattern.into(),
                            })?;
                            match response.outcome {
                                AuditOutcome::Vetted { verdict: true, .. } => passed += 1,
                                other => panic!(
                                    "auditor {}: {} failed {}: {:?}",
                                    t, item, pattern, other
                                ),
                            }
                        }
                    }
                }
                Ok(passed)
            })
        })
        .collect();
    let mut passed = 0usize;
    for handle in handles {
        passed += handle.join().expect("auditor thread")?;
    }
    let expected = AUDITORS * SUPPLIERS * ITEMS_PER_SUPPLIER * 2;
    assert_eq!(
        passed, expected,
        "every vet must come back non-Busy and true"
    );
    println!(
        "auditors vetted {} histories over the wire — verdict: pass",
        passed
    );

    // 3. One deep dive plus the server's own accounting.
    let item = Value::Channel(Channel::new("item0_0"));
    let origin = client.request(&AuditRequest::OriginOf {
        value: item.clone(),
    })?;
    if let AuditOutcome::Origin {
        principal: Some(principal),
    } = &origin.outcome
    {
        println!("origin of {}: {}", item, principal);
    }
    let stats = client.stats()?;
    println!("server engine: {}", stats);
    assert!(stats.ingested >= recorded as u64);
    assert!(stats.ingest_batches >= 1);
    assert!(
        stats.watermark >= recorded as u64,
        "the flush barrier published this client's writes"
    );
    println!(
        "server snapshot: watermark {}, {} snapshots published, lag {}",
        stats.watermark, stats.snapshots_published, stats.snapshot_lag
    );

    // 4. The full metrics plane in one round trip: the typed snapshot
    //    plus the Prometheus text exposition a scrape endpoint would
    //    serve.  The text lints clean by construction.
    let report = client.metrics()?;
    piprov::audit::validate_exposition(&report.exposition)
        .map_err(|e| format!("exposition failed its own lint: {}", e))?;
    println!(
        "\nmetrics: {} policies, {} vets timed against \"from-supplier\"",
        report.snapshot.policies.len(),
        report
            .snapshot
            .policies
            .iter()
            .find(|p| p.policy == "from-supplier")
            .map(|p| p.latency.count)
            .unwrap_or(0)
    );
    println!("--- prometheus exposition ---");
    print!("{}", report.exposition);
    Ok(())
}
