//! Connection-scaling smoke test for the event-loop serving core: one
//! process holds hundreds of idle connections while an active client
//! ingests and vets through the same server, then scrapes `/metrics`,
//! `/healthz` and `/trace` over plain HTTP on the framed port.
//!
//! Run with: `cargo run --release --example serve_scale`
//! (`PIPROV_SCALE_CONNS` overrides the idle-connection target, default
//! 300).  Every claim is printed on its own line so CI can grep it; the
//! process exits non-zero if any step fails.
//!
//! This is the in-process cousin of the `serve_server`/`serve_client`
//! pair: instead of proving the protocol across processes, it proves the
//! event loop's reason to exist — idle connections cost a registered fd,
//! not a thread — at a scale no fixed worker pool could hold.

use piprov::audit::AuditConfig;
use piprov::prelude::*;
use piprov::store::{Operation, ProvenanceRecord, ProvenanceStore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const INGESTS: u64 = 64;

fn record(i: u64) -> ProvenanceRecord {
    let origin = Principal::new(format!("supplier{}", i % 4));
    let k = Provenance::single(Event::output(origin.clone(), Provenance::empty()));
    ProvenanceRecord::new(
        i,
        origin,
        Operation::Send,
        "m",
        Value::Channel(Channel::new(format!("item{}", i))),
        k,
    )
}

#[cfg(not(target_os = "linux"))]
fn main() {
    // Off Linux the event loop falls back to the thread pool, whose
    // workers would each be pinned by one idle connection — there is no
    // scaling claim to check.
    println!("serve_scale: skipped (the event-loop core is Linux-only)");
}

#[cfg(target_os = "linux")]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: usize = std::env::var("PIPROV_SCALE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    // Each loopback connection costs two fds in this one process (client
    // end + server end); leave slack for the store, epoll, and stdio.
    let held_target = piprov::serve::poll::max_open_files()
        .map(|limit| target.min((limit as usize).saturating_sub(128) / 2))
        .unwrap_or(target);

    let dir = std::env::temp_dir().join(format!("piprov-serve-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProvenanceStore::open(&dir)?;
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 4096 },
    ));
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of([
            "supplier0",
            "supplier1",
            "supplier2",
            "supplier3",
        ])),
    );
    let server = AuditServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            core: ServerCore::EventLoop,
            workers: 2,
            ..ServeConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("serve_scale: {} core on {}", server.core().name(), addr);

    // Park the idle herd first, so the active traffic below runs with
    // the full population registered in the event loop.
    let idle: Vec<TcpStream> = (0..held_target)
        .map(|_| TcpStream::connect(addr))
        .collect::<Result<_, _>>()?;
    println!("idle connections held: {}", idle.len());

    // An active client works through the parked herd unimpeded.
    let mut client = AuditClient::connect(addr)?;
    for i in 0..INGESTS {
        client.ingest_blocking(vec![record(i)])?;
    }
    client.flush()?;
    println!("ingested {} records through the active connection", INGESTS);
    let mut passed = 0;
    for i in 0..INGESTS {
        let response = client.request(&AuditRequest::VetValue {
            value: Value::Channel(Channel::new(format!("item{}", i))),
            pattern: "from-supplier".into(),
        })?;
        if matches!(response.outcome, AuditOutcome::Vetted { verdict: true, .. }) {
            passed += 1;
        }
    }
    println!("vets: {}/{} pass", passed, INGESTS);
    assert_eq!(
        passed, INGESTS,
        "every vetted item originated at a supplier"
    );

    // The parked connections are live, not leaked: a sample of them can
    // still speak the framed protocol.
    let step = (idle.len() / 8).max(1);
    for stream in idle.iter().step_by(step) {
        let mut probe = AuditClient::from_stream(stream.try_clone()?)?;
        assert_eq!(probe.stats()?.ingested, INGESTS);
    }
    println!("sampled idle connections still answer: ok");

    // A plaintext scrape on the framed port — what `curl` would do.
    let mut scrape = TcpStream::connect(addr)?;
    scrape.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(scrape, "GET /metrics HTTP/1.1\r\nHost: piprov\r\n\r\n")?;
    let mut response = String::new();
    scrape.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    println!("metrics scrape: {}", status);
    assert!(
        status.starts_with("HTTP/1.1 200 OK"),
        "scrape failed: {}",
        status
    );
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    validate_exposition(&body)?;
    println!("exposition: {} bytes, lint-clean", body.len());
    for line in body.lines() {
        if line.starts_with("piprov_ingested_total")
            || line.starts_with("piprov_vets_passed_total")
            || line.contains("request_service_seconds_count")
            || line.contains("frame_decode_seconds_count")
        {
            println!("{}", line);
        }
    }

    // Liveness and tracing over the same port.  The vets above ran with
    // the client's default trace propagation, so `/trace` tells their
    // per-stage story; the span-breakdown line below is what CI greps.
    let mut health = TcpStream::connect(addr)?;
    health.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(health, "GET /healthz HTTP/1.1\r\nHost: piprov\r\n\r\n")?;
    let mut response = String::new();
    health.read_to_string(&mut response)?;
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "healthz failed: {}",
        response.lines().next().unwrap_or("")
    );
    println!("healthz: ok");

    let mut traces = TcpStream::connect(addr)?;
    traces.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(traces, "GET /trace HTTP/1.1\r\nHost: piprov\r\n\r\n")?;
    let mut response = String::new();
    traces.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_string();
    println!("trace scrape: {}", status);
    assert!(
        status.starts_with("HTTP/1.1 200 OK"),
        "trace scrape failed: {}",
        status
    );
    let trace_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    validate_trace_text(&trace_body)?;
    println!("traces: {} bytes, lint-clean", trace_body.len());
    // The stages of the first vetted request, in pipeline order.
    let mut stages: Vec<&str> = Vec::new();
    let mut in_vet = false;
    for line in trace_body.lines() {
        if let Some(span) = line.strip_prefix("  ") {
            if in_vet {
                stages.push(span.split(' ').next().unwrap_or_default());
            }
        } else if in_vet {
            break;
        } else {
            in_vet = line.starts_with("trace ") && line.contains("kind=vet");
        }
    }
    println!("span breakdown: {}", stages.join(" "));
    assert_eq!(
        stages,
        ["client_encode", "decode", "handle", "write"],
        "a traced vet stamps every stage of its pipeline"
    );

    drop(client);
    drop(idle);
    server.shutdown()?;
    std::fs::remove_dir_all(&dir).ok();
    println!("serve_scale: verdict: pass");
    Ok(())
}
