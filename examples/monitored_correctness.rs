//! Theorem 1 and Proposition 3, live.
//!
//! A monitored system pairs the running system with a global log of every
//! action.  This example runs the paper's own counterexample system and a
//! larger relay, checking at every step that provenance stays **correct**
//! (Theorem 1) while **completeness** is lost as soon as anything happens
//! (Proposition 3).  It also shows that a *forged* annotation is flagged as
//! incorrect.
//!
//! Run with: `cargo run --example monitored_correctness`

use piprov::core::pattern::TrivialPatterns;
use piprov::logs::{
    check_provenance, has_complete_provenance, has_correct_provenance,
    incompleteness_counterexample, monitored_successors, MonitoredExecutor, MonitoredSystem,
};
use piprov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Proposition 3: completeness is not preserved. -------------------
    let m0 = incompleteness_counterexample();
    println!("initial monitored system: {}", m0.system);
    println!(
        "  correct = {}, complete = {}",
        has_correct_provenance(&m0),
        has_complete_provenance(&m0)
    );
    let (_, m1) = monitored_successors(&m0, &TrivialPatterns)?.remove(0);
    println!("after a's send, the global log is: {}", m1.log());
    println!(
        "  correct = {}, complete = {}   <-- Proposition 3",
        has_correct_provenance(&m1),
        has_complete_provenance(&m1)
    );
    assert!(has_correct_provenance(&m1));
    assert!(!has_complete_provenance(&m1));

    // --- Theorem 1 along a longer run. ------------------------------------
    let relay: System<AnyPattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("c0"), Identifier::channel("v")),
        ),
        System::located(
            "s",
            Process::input(
                Identifier::channel("c0"),
                AnyPattern,
                "x",
                Process::output(Identifier::channel("c1"), Identifier::variable("x")),
            ),
        ),
        System::located(
            "t",
            Process::input(
                Identifier::channel("c1"),
                AnyPattern,
                "y",
                Process::output(Identifier::channel("c2"), Identifier::variable("y")),
            ),
        ),
        System::located(
            "b",
            Process::input(Identifier::channel("c2"), AnyPattern, "z", Process::nil()),
        ),
    ]);
    println!("\nrelay system: {}", relay);
    let mut exec = MonitoredExecutor::new(&relay, TrivialPatterns);
    let mut step = 0;
    loop {
        let monitored = exec.as_monitored_system();
        let report = check_provenance(&monitored);
        println!(
            "  step {:>2}: log has {:>2} actions, {} values, correct = {}",
            step,
            monitored.log().action_count(),
            report.verdicts.len(),
            report.is_correct()
        );
        assert!(report.is_correct(), "Theorem 1 must hold at every step");
        if exec.step()?.is_none() {
            break;
        }
        step += 1;
    }
    println!(
        "\nglobal log at quiescence (most recent first):\n  {}",
        exec.log()
    );

    // --- Forged provenance is detected as incorrect. ----------------------
    let forged =
        AnnotatedValue::channel("v").sent_by(&Principal::new("alice"), &Provenance::empty());
    let bogus: MonitoredSystem<AnyPattern> =
        MonitoredSystem::new(System::message(Message::new("m", forged)));
    let report = check_provenance(&bogus);
    println!(
        "\na value claiming 'sent by alice' with an empty global log: correct = {}",
        report.is_correct()
    );
    assert!(!report.is_correct());
    for bad in report.incorrect_values() {
        println!(
            "  flagged: {}   (denotation: {})",
            bad.value, bad.denotation
        );
    }
    Ok(())
}
