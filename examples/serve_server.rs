//! The server half of the cross-process audit demo: open an engine,
//! register the supply-chain policies, and serve the framed wire protocol
//! on a TCP address until killed.
//!
//! Run with: `cargo run --example serve_server`
//! (then drive it with `cargo run --example serve_client` from another
//! process; both honour `PIPROV_SERVE_ADDR`, default `127.0.0.1:7141`).

use piprov::audit::{AuditConfig, AuditEngine};
use piprov::prelude::*;
use piprov::store::ProvenanceStore;
use std::sync::Arc;

/// Shared with `serve_client.rs`: the workload's principal names.
const SUPPLIERS: usize = 4;
const RELAYS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::var("PIPROV_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7141".to_string());
    let dir = std::env::temp_dir().join(format!("piprov-serve-server-{}", std::process::id()));
    let store = ProvenanceStore::open(&dir)?;
    let engine = Arc::new(AuditEngine::with_config(
        store,
        AuditConfig { memo_bound: 4096 },
    ));

    let suppliers: Vec<String> = (0..SUPPLIERS).map(|i| format!("supplier{}", i)).collect();
    engine.register_pattern(
        "from-supplier",
        Pattern::originated_at(GroupExpr::any_of(suppliers.clone())),
    );
    let mut chain = suppliers;
    chain.extend((0..RELAYS).map(|i| format!("relay{}", i)));
    engine.register_pattern(
        "chain-only",
        Pattern::only_touched_by(GroupExpr::any_of(chain)),
    );

    let server = AuditServer::bind(Arc::clone(&engine), addr.as_str(), ServeConfig::default())?;
    println!("piprov-serve listening on {}", server.local_addr());
    println!("patterns: from-supplier, chain-only — drive me with the serve_client example");
    // Serve until killed; the worker pool does the rest.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
