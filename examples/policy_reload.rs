//! The policy-pack plane over the wire: load the shipped
//! `policies/supply_chain/` pack from disk into a running server, list
//! it back (typed and via the plaintext `GET /policies` scrape), prove
//! a broken pack changes nothing, then hot-reload and watch the
//! version bump while every compiled automaton carries over.
//!
//! Run `cargo run --example serve_server` first, then:
//! `cargo run --example policy_reload`
//! (both honour `PIPROV_SERVE_ADDR`, default `127.0.0.1:7141`; the pack
//! directory comes from `PIPROV_POLICY_DIR`, default
//! `policies/supply_chain`).

use piprov::prelude::*;
use piprov::serve::PackLoadOutcome;
use piprov::store::{Operation, ProvenanceRecord};
use std::io::{Read, Write};
use std::path::PathBuf;

const VENDOR_ONLY: &str = "supply_chain::build::vendor_only";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::var("PIPROV_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7141".to_string());
    let pack_dir = std::env::var("PIPROV_POLICY_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("policies/supply_chain"));

    // 1. Read the pack off disk — the directory name becomes the root
    //    package, each file's path the rest of its package.
    let source = PackSource::from_dir(&pack_dir)?;
    println!(
        "read pack `{}` from {}: {} files",
        source.root,
        pack_dir.display(),
        source.files.len()
    );

    // 2. Ship it inline over the wire; the server compiles everything
    //    off to the side and publishes in one atomic swap.
    let mut client = AuditClient::connect(addr.as_str())?;
    let version = match client.load_pack(&source)? {
        PackLoadOutcome::Loaded {
            version,
            installed,
            reused,
        } => {
            println!(
                "policy pack loaded: version {}, {} policies ({} reused)",
                version, installed, reused
            );
            version
        }
        PackLoadOutcome::Rejected { diagnostics } => {
            for diagnostic in &diagnostics {
                eprintln!("  {}", diagnostic);
            }
            return Err("the shipped pack must compile".into());
        }
    };

    // 3. List it back, typed.
    let listing = client.list_policies()?;
    assert_eq!(listing.version, version);
    println!("\n--- ListPolicies ---");
    print!("{}", listing);

    // 4. The same listing as plaintext, next to /metrics and /trace.
    let mut stream = std::net::TcpStream::connect(addr.as_str())?;
    write!(stream, "GET /policies HTTP/1.1\r\nHost: piprov\r\n\r\n")?;
    let mut scrape = String::new();
    stream.read_to_string(&mut scrape)?;
    let status = scrape.lines().next().unwrap_or("");
    println!("\nGET /policies scrape: {}", status);
    print!("{}", scrape.split("\r\n\r\n").nth(1).unwrap_or(&scrape));
    assert!(status.contains("200 OK"));
    assert!(scrape.contains(VENDOR_ONLY));

    // 5. Vet a shipment against the loaded pack: the response carries
    //    the pack version that answered it.
    let item = Value::Channel(Channel::new("pallet0"));
    let provenance = Provenance::single(Event::output(
        Principal::new("supplier0"),
        Provenance::empty(),
    ));
    client.ingest_blocking(vec![ProvenanceRecord::new(
        1,
        "supplier0",
        Operation::Send,
        "intake",
        item.clone(),
        provenance,
    )])?;
    client.flush()?;
    let response = client.request(&AuditRequest::VetValue {
        value: item,
        pattern: VENDOR_ONLY.into(),
    })?;
    assert!(matches!(
        response.outcome,
        AuditOutcome::Vetted { verdict: true, .. }
    ));
    println!(
        "\nvetted pallet0 against {}: pass (pack version {})",
        VENDOR_ONLY, response.pack_version
    );

    // 6. A pack with an error changes nothing — the server answers with
    //    per-file line/column diagnostics and keeps the published set.
    let broken = PackSource::new(
        source.root.clone(),
        vec![PackFile::new("build.ppol", "policy broken = (((\n")],
    );
    match client.load_pack(&broken)? {
        PackLoadOutcome::Rejected { diagnostics } => {
            println!(
                "\nbroken pack rejected with {} diagnostic(s):",
                diagnostics.len()
            );
            for diagnostic in &diagnostics {
                println!("  {}", diagnostic);
            }
        }
        PackLoadOutcome::Loaded { .. } => return Err("broken pack must be rejected".into()),
    }
    assert_eq!(client.list_policies()?.version, version, "all-or-nothing");
    println!("registry unchanged at version {}", version);

    // 7. Hot reload the same pack: one atomic publish, every unchanged
    //    policy keeps its compiled automaton (and its memo).
    match client.load_pack(&source)? {
        PackLoadOutcome::Loaded {
            version: reloaded,
            installed,
            reused,
        } => {
            assert_eq!(reloaded, version + 1);
            assert_eq!(reused, installed);
            println!(
                "\nhot reload: version {}, {}/{} automata carried over",
                reloaded, reused, installed
            );
        }
        PackLoadOutcome::Rejected { .. } => return Err("reload must succeed".into()),
    }

    println!("\npolicy_reload: verdict: pass");
    Ok(())
}
