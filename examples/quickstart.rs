//! Quickstart: the paper's introductory "market of values".
//!
//! Three principals share a channel `n`: `a` and `b` both offer a value,
//! and the consumer `c` is free to pick either.  With provenance tracking
//! and pattern-restricted input, `c` can insist on data sent directly by
//! `a`, and the runtime-maintained provenance makes that check
//! unforgeable.
//!
//! Run with: `cargo run --example quickstart`

use piprov::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The untrusted market: c consumes whatever arrives first. -----
    let naive: System<AnyPattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(Identifier::channel("n"), AnyPattern, "x", Process::nil()),
        ),
    ]);
    println!("naive system:\n  {}\n", naive);

    let mut exec =
        Executor::new(&naive, TrivialPatterns).with_policy(SchedulerPolicy::Random { seed: 42 });
    let outcome = exec.run(1_000)?;
    println!("naive run finished after {} steps; trace:", outcome.steps);
    for event in exec.trace() {
        println!("  {}", event);
    }
    println!();

    // --- 2. The provenance-aware market: c only accepts data sent by a. --
    let pattern = parse_pattern("a!Any; Any")?;
    let selective: System<Pattern> = System::par_all(vec![
        System::located(
            "a",
            Process::output(Identifier::channel("n"), Identifier::channel("v1")),
        ),
        System::located(
            "b",
            Process::output(Identifier::channel("n"), Identifier::channel("v2")),
        ),
        System::located(
            "c",
            Process::input(Identifier::channel("n"), pattern, "x", Process::nil()),
        ),
    ]);
    println!("provenance-aware system:\n  {}\n", selective);

    let mut exec = Executor::new(&selective, SamplePatterns::new())
        .with_policy(SchedulerPolicy::Random { seed: 42 });
    exec.run(1_000)?;
    println!("provenance-aware run trace:");
    for event in exec.trace() {
        println!("  {}", event);
    }

    // b's offer is still sitting on the channel: c refused it.
    let leftover = &exec.configuration().messages;
    println!("\nunconsumed messages:");
    for message in leftover {
        println!("  {}", message);
    }
    assert_eq!(leftover.len(), 1);
    assert_eq!(leftover[0].payload[0].value.as_str(), "v2");

    // The value c did consume carries its full pedigree, maintained by the
    // middleware, not by the (potentially dishonest) sender.
    println!("\nc accepted only the value genuinely sent by a.");
    Ok(())
}
